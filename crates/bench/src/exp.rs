//! The experiment suite: one entry per table/figure of the paper (see
//! DESIGN.md §3 for the index). Each experiment returns a rendered report
//! plus a pass/fail verdict that the integration tests assert on.
#![allow(clippy::type_complexity, clippy::too_many_arguments)]

use crate::table::{f2, f3, TextTable};
use abp_dag::{gen, Dag};
use abp_kernel::{
    AdaptiveThiefStarver, AdaptiveWorkerStarver, BenignKernel, CountSource, DedicatedKernel,
    Kernel, KernelTable, ObliviousKernel, Theorem1Kernel, YieldPolicy,
};
use abp_sim::{brent, figure2_execution, greedy, run_ws, DequeBackend, RunReport, WsConfig};
use std::fmt::Write as _;

/// Outcome of one experiment.
#[derive(Debug, Clone)]
pub struct ExpResult {
    pub id: &'static str,
    pub title: &'static str,
    pub body: String,
    pub pass: bool,
}

impl ExpResult {
    fn new(id: &'static str, title: &'static str, body: String, pass: bool) -> Self {
        ExpResult {
            id,
            title,
            body,
            pass,
        }
    }
}

impl std::fmt::Display for ExpResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "== {} — {} [{}] ==",
            self.id,
            self.title,
            if self.pass { "PASS" } else { "FAIL" }
        )?;
        write!(f, "{}", self.body)
    }
}

/// The standard workload suite used across experiments.
pub fn workloads() -> Vec<(&'static str, Dag)> {
    vec![
        ("fork-join(10,2)", gen::fork_join_tree(10, 2)),
        ("fib(18,4)", gen::fib(18, 4)),
        ("wide(256,50)", gen::wide_shallow(256, 50)),
        ("series-par(97)", gen::random_series_parallel(97, 30_000)),
        ("pipeline(8,200)", gen::sync_pipeline(8, 200)),
        ("wavefront(20,40)", gen::wavefront(20, 40)),
        ("comb(300,4,2)", gen::comb(300, 4, 2)),
        ("chain(4000)", gen::chain(4000)),
    ]
}

fn small_workloads() -> Vec<(&'static str, Dag)> {
    vec![
        ("fork-join(6,2)", gen::fork_join_tree(6, 2)),
        ("fib(12,3)", gen::fib(12, 3)),
        ("wide(32,20)", gen::wide_shallow(32, 20)),
        ("pipeline(4,40)", gen::sync_pipeline(4, 40)),
    ]
}

// ---------------------------------------------------------------- figures

/// F1 — Figure 1: the example computation dag.
pub fn fig1() -> ExpResult {
    let (dag, f) = abp_dag::examples::figure1();
    let mut body = String::new();
    writeln!(
        body,
        "Reconstruction of the Figure-1 dag (see module docs for the mapping):"
    )
    .unwrap();
    writeln!(body, "  root thread : {:?}", f.root_nodes).unwrap();
    writeln!(body, "  child thread: {:?}", f.child_nodes).unwrap();
    for e in dag.edges() {
        if e.kind != abp_dag::EdgeKind::Continue {
            writeln!(body, "  edge {} -> {} [{:?}]", e.from, e.to, e.kind).unwrap();
        }
    }
    writeln!(
        body,
        "  T1 = {}, Tinf = {}, parallelism = {}",
        dag.work(),
        dag.critical_path(),
        f3(dag.parallelism())
    )
    .unwrap();
    let pass = dag.work() == 11 && dag.critical_path() == 9 && dag.num_threads() == 2;
    ExpResult::new("F1", "Figure 1: example computation dag", body, pass)
}

/// F2 — Figure 2: kernel schedule and greedy execution schedule.
pub fn fig2() -> ExpResult {
    let (sched, dag, table) = figure2_execution();
    let mut body = String::new();
    writeln!(body, "(a) kernel schedule, 3 processes, 10 steps:").unwrap();
    body.push_str(&table.render(10));
    writeln!(
        body,
        "processor average over 10 steps: P_A = {}",
        f2(table.processor_average(10))
    )
    .unwrap();
    writeln!(body, "\n(b) greedy execution schedule of the Figure-1 dag:").unwrap();
    body.push_str(&sched.render(3));
    writeln!(
        body,
        "length {} steps, {} idle slots ({} nodes executed)",
        sched.length(),
        sched.idle_tokens(),
        dag.work()
    )
    .unwrap();
    let pass = sched.validate(&dag, &table).is_ok()
        && sched.length() == 10
        && (table.processor_average(10) - 2.0).abs() < 1e-12;
    ExpResult::new("F2", "Figure 2: kernel + execution schedule", body, pass)
}

// --------------------------------------------------------- Section 2 theory

/// T1 — Theorem 1: lower bounds on every execution schedule.
pub fn thm1() -> ExpResult {
    let mut t = TextTable::new([
        "workload",
        "P",
        "k",
        "sched",
        "T",
        "P_A",
        "T1/P_A",
        "Tinf*P/P_A",
        "T/lower",
    ]);
    let mut pass = true;
    for (name, dag) in small_workloads() {
        for &p in &[4usize, 8] {
            for &k in &[0u64, 2, 8] {
                let table = Theorem1Kernel::new(p, dag.critical_path(), k).to_table();
                for (sname, sched) in [
                    ("greedy", greedy(&dag, &table, 50_000_000)),
                    ("brent", brent(&dag, &table, 50_000_000)),
                ] {
                    let tlen = sched.length() as f64;
                    let pa = sched.processor_average();
                    let lb_work = dag.work() as f64 / pa;
                    let lb_path = dag.critical_path() as f64 * p as f64 / pa;
                    let lower = lb_work.max(lb_path);
                    let ok = tlen >= lower - 1e-9 && sched.validate(&dag, &table).is_ok();
                    pass &= ok;
                    t.row([
                        name.to_string(),
                        p.to_string(),
                        k.to_string(),
                        sname.to_string(),
                        format!("{tlen:.0}"),
                        f2(pa),
                        f2(lb_work),
                        f2(lb_path),
                        f3(tlen / lower),
                    ]);
                }
            }
        }
    }
    let body = format!(
        "Every execution schedule satisfies T ≥ max(T1/P_A, Tinf·P/P_A) under the\n\
         Theorem-1 kernel construction (P procs for Tinf steps, 0 for k·Tinf, then 1):\n\n{}",
        t.render()
    );
    ExpResult::new("T1", "Theorem 1: lower bounds", body, pass)
}

/// T2 — Theorem 2: greedy (and Brent) schedules meet the upper bound.
pub fn thm2() -> ExpResult {
    let mut t = TextTable::new([
        "workload", "kernel", "P", "sched", "T", "P_A", "bound", "T/bound",
    ]);
    let mut pass = true;
    for (name, dag) in small_workloads() {
        let kernels: Vec<(&str, usize, KernelTable)> = vec![
            ("dedicated", 8, KernelTable::dedicated(8)),
            (
                "sawtooth",
                8,
                KernelTable::from_counts(8, &[8, 6, 4, 2, 1, 2, 4, 6], abp_kernel::Tail::Cycle),
            ),
            (
                "on/off",
                6,
                KernelTable::from_counts(6, &[6, 6, 6, 0, 0, 1], abp_kernel::Tail::Cycle),
            ),
        ];
        for (kname, p, table) in kernels {
            for (sname, sched) in [
                ("greedy", greedy(&dag, &table, 50_000_000)),
                ("brent", brent(&dag, &table, 50_000_000)),
            ] {
                let tlen = sched.length() as f64;
                let pa = sched.processor_average();
                let bound =
                    (dag.work() as f64 + dag.critical_path() as f64 * (p as f64 - 1.0)) / pa;
                let ok = tlen <= bound + 1e-9 && sched.validate(&dag, &table).is_ok();
                pass &= ok;
                t.row([
                    name.to_string(),
                    kname.to_string(),
                    p.to_string(),
                    sname.to_string(),
                    format!("{tlen:.0}"),
                    f2(pa),
                    f2(bound),
                    f3(tlen / bound),
                ]);
            }
        }
    }
    let body = format!(
        "Greedy and level-by-level schedules satisfy T ≤ (T1 + Tinf·(P−1))/P_A:\n\n{}",
        t.render()
    );
    ExpResult::new("T2", "Theorem 2: greedy schedules", body, pass)
}

// ------------------------------------------------------- Section 4 theorems

fn ws_defaults(seed: u64) -> WsConfig {
    WsConfig::default()
        .with_seed(seed)
        .with_max_rounds(20_000_000)
}

/// T9 — dedicated environments: time O(T1/P + T∞) and linear speedup.
pub fn thm9() -> ExpResult {
    let mut t = TextTable::new([
        "workload", "T1", "Tinf", "para", "P", "rounds", "speedup", "util", "ratio",
    ]);
    let mut pass = true;
    for (name, dag) in workloads() {
        let mut t1_rounds = None;
        for &p in &[1usize, 2, 4, 8, 16, 32] {
            let mut k = DedicatedKernel::new(p);
            let r = run_ws(&dag, p, &mut k, ws_defaults(7));
            pass &= r.completed;
            let base = *t1_rounds.get_or_insert(r.rounds);
            let speedup = base as f64 / r.rounds as f64;
            // In the linear-speedup regime (P ≪ parallelism), expect at
            // least half-linear speedup.
            if (p as f64) <= dag.parallelism() / 10.0 {
                pass &= speedup >= 0.5 * p as f64;
            }
            t.row([
                name.to_string(),
                dag.work().to_string(),
                dag.critical_path().to_string(),
                f2(dag.parallelism()),
                p.to_string(),
                r.rounds.to_string(),
                f2(speedup),
                f3(r.utilization()),
                f3(r.bound_ratio()),
            ]);
        }
    }
    let body = format!(
        "Work stealing on a dedicated machine (P_A = P). speedup = T(1)/T(P);\n\
         util = T1/(P·T); ratio = T/(T1/P_A + Tinf·P/P_A) — bounded by a constant:\n\n{}",
        t.render()
    );
    ExpResult::new("T9", "Theorem 9: dedicated environments", body, pass)
}

/// T9b — high-probability tail: throws vs O(P·(T∞ + lg 1/ε)).
pub fn thm9_tail() -> ExpResult {
    let dag = gen::fork_join_tree(9, 2);
    let p = 8usize;
    let trials = 200;
    let mut throws: Vec<u64> = (0..trials)
        .map(|seed| {
            let mut k = DedicatedKernel::new(p);
            let r = run_ws(&dag, p, &mut k, ws_defaults(seed));
            assert!(r.completed);
            r.throws
        })
        .collect();
    throws.sort_unstable();
    let q = |x: f64| throws[((throws.len() - 1) as f64 * x) as usize];
    let mean = throws.iter().sum::<u64>() as f64 / trials as f64;
    let pt = p as f64 * dag.critical_path() as f64;
    let mut t = TextTable::new(["quantile", "throws", "throws/(P*Tinf)"]);
    for (label, x) in [("50%", 0.5), ("90%", 0.9), ("99%", 0.99), ("max", 1.0)] {
        t.row([label.to_string(), q(x).to_string(), f3(q(x) as f64 / pt)]);
    }
    // The whole distribution should sit within a modest constant of
    // P·Tinf, and the tail must grow slowly (max within 2x of median).
    let pass = (q(1.0) as f64) < 16.0 * pt && (q(1.0) as f64) < 2.5 * q(0.5) as f64;
    let body = format!(
        "fork-join(9,2): T1={}, Tinf={}, P={p}, {trials} seeds; mean throws {:.0}\n\
         (Theorem 9: E[throws] = O(P·Tinf) = O({:.0}); tail adds O(P·lg(1/ε))):\n\n{}",
        dag.work(),
        dag.critical_path(),
        mean,
        pt,
        t.render()
    );
    ExpResult::new("T9b", "Theorem 9: high-probability tail", body, pass)
}

fn multiprog_row(
    t: &mut TextTable,
    pass: &mut bool,
    name: &str,
    kname: &str,
    dag: &Dag,
    p: usize,
    kernel: &mut dyn Kernel,
    cfg: WsConfig,
) -> RunReport {
    let r = run_ws(dag, p, kernel, cfg);
    *pass &= r.completed;
    t.row([
        name.to_string(),
        kname.to_string(),
        p.to_string(),
        r.rounds.to_string(),
        f2(r.pa),
        r.throws.to_string(),
        f3(r.bound_ratio()),
    ]);
    r
}

const MULTIPROG_HEADER: [&str; 7] = [
    "workload", "kernel", "P", "rounds", "P_A", "throws", "ratio",
];

/// T10 — benign adversary (random membership), no yields needed.
pub fn thm10() -> ExpResult {
    let mut t = TextTable::new(MULTIPROG_HEADER);
    let mut pass = true;
    let mut ratios = Vec::new();
    for (name, dag) in workloads() {
        let p = 8;
        for (kname, counts) in [
            ("uniform(1,8)", CountSource::UniformBetween(1, 8)),
            ("constant(3)", CountSource::Constant(3)),
            (
                "bursty",
                CountSource::OnOff {
                    on_rounds: 50,
                    off_rounds: 50,
                    on_count: 8,
                    off_count: 1,
                },
            ),
        ] {
            let mut k = BenignKernel::new(p, counts, 1234);
            let cfg = ws_defaults(3).with_yield_policy(YieldPolicy::None);
            let r = multiprog_row(&mut t, &mut pass, name, kname, &dag, p, &mut k, cfg);
            ratios.push(r.bound_ratio());
        }
    }
    let max_ratio = ratios.iter().cloned().fold(0.0f64, f64::max);
    pass &= max_ratio < 3.0;
    let body = format!(
        "Benign adversary chooses p_i; members are uniform random; *no yields*.\n\
         ratio = rounds/(T1/P_A + Tinf·P/P_A) stays bounded (max {:.3}):\n\n{}",
        max_ratio,
        t.render()
    );
    ExpResult::new("T10", "Theorem 10: benign adversary", body, pass)
}

/// T11 — oblivious adversary with yieldToRandom.
pub fn thm11() -> ExpResult {
    let mut t = TextTable::new(MULTIPROG_HEADER);
    let mut pass = true;
    let mut ratios = Vec::new();
    for (name, dag) in workloads() {
        let p = 8;
        let kernels: Vec<(&str, ObliviousKernel)> = vec![
            ("rotating(2)", ObliviousKernel::rotating(p, 2, 40, 4000)),
            ("rotating(5)", ObliviousKernel::rotating(p, 5, 10, 4000)),
            (
                "precommitted",
                ObliviousKernel::precommitted_random(
                    p,
                    CountSource::UniformBetween(1, 8),
                    100_000,
                    77,
                ),
            ),
        ];
        for (kname, mut k) in kernels {
            let cfg = ws_defaults(5).with_yield_policy(YieldPolicy::ToRandom);
            let r = multiprog_row(&mut t, &mut pass, name, kname, &dag, p, &mut k, cfg);
            ratios.push(r.bound_ratio());
        }
    }
    let max_ratio = ratios.iter().cloned().fold(0.0f64, f64::max);
    pass &= max_ratio < 3.0;
    let body = format!(
        "Oblivious adversary (schedule precommitted before execution), thieves\n\
         use yieldToRandom. max ratio {:.3}:\n\n{}",
        max_ratio,
        t.render()
    );
    ExpResult::new(
        "T11",
        "Theorem 11: oblivious adversary + yieldToRandom",
        body,
        pass,
    )
}

/// T12 — adaptive adversary with yieldToAll.
pub fn thm12() -> ExpResult {
    let mut t = TextTable::new(MULTIPROG_HEADER);
    let mut pass = true;
    let mut ratios = Vec::new();
    for (name, dag) in workloads() {
        let p = 8;
        for (kname, counts) in [
            ("starve-workers(4)", CountSource::Constant(4)),
            ("starve-workers(1..8)", CountSource::UniformBetween(1, 8)),
        ] {
            let mut k = AdaptiveWorkerStarver::new(p, counts, 555);
            let cfg = ws_defaults(9).with_yield_policy(YieldPolicy::ToAll);
            let r = multiprog_row(&mut t, &mut pass, name, kname, &dag, p, &mut k, cfg);
            ratios.push(r.bound_ratio());
        }
        let mut k = AdaptiveThiefStarver::new(p, CountSource::Constant(4), 556);
        let cfg = ws_defaults(9).with_yield_policy(YieldPolicy::ToAll);
        let r = multiprog_row(
            &mut t,
            &mut pass,
            name,
            "starve-thieves(4)",
            &dag,
            p,
            &mut k,
            cfg,
        );
        ratios.push(r.bound_ratio());
    }
    let max_ratio = ratios.iter().cloned().fold(0.0f64, f64::max);
    pass &= max_ratio < 6.0;
    let body = format!(
        "Adaptive adversaries observe scheduler state online; thieves use\n\
         yieldToAll. max ratio {:.3}:\n\n{}",
        max_ratio,
        t.render()
    );
    ExpResult::new(
        "T12",
        "Theorem 12: adaptive adversary + yieldToAll",
        body,
        pass,
    )
}

/// H1 — the Hood empirical claim: the hidden constant is small and stable
/// across environments.
pub fn hood_constant() -> ExpResult {
    let mut ratios: Vec<(String, f64)> = Vec::new();
    let p = 8;
    for (name, dag) in workloads() {
        let cases: Vec<(&str, Box<dyn Kernel>, YieldPolicy)> = vec![
            (
                "dedicated",
                Box::new(DedicatedKernel::new(p)),
                YieldPolicy::None,
            ),
            (
                "benign",
                Box::new(BenignKernel::new(p, CountSource::UniformBetween(1, 8), 42)),
                YieldPolicy::None,
            ),
            (
                "oblivious",
                Box::new(ObliviousKernel::rotating(p, 3, 25, 4000)),
                YieldPolicy::ToRandom,
            ),
            (
                "adaptive",
                Box::new(AdaptiveWorkerStarver::new(p, CountSource::Constant(4), 7)),
                YieldPolicy::ToAll,
            ),
        ];
        for (kname, mut k, yp) in cases {
            let cfg = ws_defaults(21).with_yield_policy(yp);
            let r = run_ws(&dag, p, k.as_mut(), cfg);
            if r.completed {
                ratios.push((format!("{name}/{kname}"), r.bound_ratio()));
            } else {
                ratios.push((format!("{name}/{kname} INCOMPLETE"), f64::INFINITY));
            }
        }
    }
    let max = ratios.iter().map(|(_, r)| *r).fold(0.0f64, f64::max);
    let mean = ratios.iter().map(|(_, r)| *r).sum::<f64>() / ratios.len() as f64;
    let mut t = TextTable::new(["environment", "ratio"]);
    for (n, r) in &ratios {
        t.row([n.clone(), f3(*r)]);
    }
    let pass = max.is_finite() && max < 6.0;
    let body = format!(
        "rounds / (T1/P_A + Tinf·P/P_A) across every workload × environment.\n\
         One simulator round grants ≤ 3C = 48 instructions per process, and a\n\
         node execution costs ~3-5 instructions amortized, so a ratio ≈ 0.1–0.3\n\
         in round units corresponds to the paper's 'constant ≈ 1' in node\n\
         units. mean {:.3}, max {:.3}, spread {:.2}x:\n\n{}",
        mean,
        max,
        max / ratios.iter().map(|(_, r)| *r).fold(f64::INFINITY, f64::min),
        t.render()
    );
    ExpResult::new(
        "H1",
        "Hood claim: small, stable hidden constant",
        body,
        pass,
    )
}

// ----------------------------------------------------------------- ablations

/// A1 — non-blocking deques are essential under multiprogramming.
///
/// The failure mode: a process preempted *inside* a deque operation keeps
/// the lock, and every thief that targets that deque spins through entire
/// quanta until the holder runs again. A dedicated kernel rarely exposes
/// this; a kernel that runs a rotating subset of processes (each lock
/// holder sits unscheduled for many rounds) exposes it brutally.
pub fn ablate_lock() -> ExpResult {
    let mut t = TextTable::new(["workload", "kernel", "P", "backend", "rounds", "slowdown"]);
    let mut pass = true;
    let mut worst_multiprog_slowdown = 0.0f64;
    for (name, dag) in [
        ("fib(16,2)", gen::fib(16, 2)),
        ("fork-join(9,1)", gen::fork_join_tree(9, 1)),
    ] {
        let p = 8;
        let kernels: [(&str, bool, fn() -> Box<dyn Kernel>); 3] = [
            ("dedicated", false, || Box::new(DedicatedKernel::new(8))),
            ("rotating(4,q=5)", true, || {
                Box::new(ObliviousKernel::rotating(8, 4, 5, 2_000_000))
            }),
            ("rotating(2,q=5)", true, || {
                Box::new(ObliviousKernel::rotating(8, 2, 5, 2_000_000))
            }),
        ];
        for (kname, multiprog, make) in kernels {
            let mut rounds_abp = 0;
            for backend in [DequeBackend::Abp, DequeBackend::Locking] {
                let mut k = make();
                let cfg = ws_defaults(13)
                    .with_backend(backend)
                    .with_yield_policy(YieldPolicy::None)
                    .with_max_rounds(30_000_000);
                let r = run_ws(&dag, p, k.as_mut(), cfg);
                pass &= r.completed;
                let slowdown = if backend == DequeBackend::Abp {
                    rounds_abp = r.rounds;
                    1.0
                } else {
                    let s = r.rounds as f64 / rounds_abp as f64;
                    if multiprog {
                        worst_multiprog_slowdown = worst_multiprog_slowdown.max(s);
                    }
                    s
                };
                t.row([
                    name.to_string(),
                    kname.to_string(),
                    p.to_string(),
                    format!("{backend:?}"),
                    r.rounds.to_string(),
                    f2(slowdown),
                ]);
            }
        }
    }
    // The decisive case: an adaptive kernel that deschedules lock holders
    // (the paper's §1 scenario — "if the kernel preempts a process, it
    // does not hinder other processes, for example by holding locks").
    // The ABP scheduler shrugs it off; the locking scheduler livelocks.
    let cap = 200_000u64;
    let mut lock_starved = false;
    let mut abp_completed = false;
    for backend in [DequeBackend::Abp, DequeBackend::Locking] {
        let mut k = abp_kernel::AdaptiveCriticalStarver::new(8, CountSource::Constant(4), 99);
        let cfg = ws_defaults(13)
            .with_backend(backend)
            .with_yield_policy(YieldPolicy::None)
            .with_max_rounds(cap);
        let dag = gen::fib(14, 3);
        let r = run_ws(&dag, 8, &mut k, cfg);
        match backend {
            DequeBackend::Abp => abp_completed = r.completed,
            _ => lock_starved = !r.completed,
        }
        t.row([
            "fib(14,3)".to_string(),
            "lock-targeting".to_string(),
            "8".to_string(),
            format!("{backend:?}"),
            if r.completed {
                r.rounds.to_string()
            } else {
                format!(">{cap} (livelock)")
            },
            if r.completed {
                "1.00".into()
            } else {
                "∞".into()
            },
        ]);
    }
    // The paper: "performance degrades dramatically" — a visible penalty
    // under the oblivious rotation, and unbounded degradation once the
    // adversary targets lock holders.
    pass &= worst_multiprog_slowdown > 1.1 && abp_completed && lock_starved;
    let body = format!(
        "ABP vs lock-based deque (same per-op instruction budget, yields off so\n\
         the deque is the only variable). Dedicated machines barely notice; a\n\
         rotating kernel already penalizes locks ({:.2}x, thieves spin on\n\
         preempted holders); and an adaptive kernel that simply *never\n\
         schedules a lock holder* livelocks the blocking scheduler while the\n\
         non-blocking one finishes — the paper's 'performance degrades\n\
         dramatically':\n\n{}",
        worst_multiprog_slowdown,
        t.render()
    );
    ExpResult::new("A1", "Ablation: non-blocking deque vs locks", body, pass)
}

/// A2 — yields are essential against adaptive adversaries.
pub fn ablate_yield() -> ExpResult {
    let dag = gen::fork_join_tree(7, 2);
    let p = 8;
    let cap = 300_000;
    let mut t = TextTable::new(["adversary", "yield", "completed", "rounds"]);
    let mut pass = true;
    let adversaries: [(&str, fn() -> Box<dyn Kernel>); 2] = [
        ("starve-workers", || {
            Box::new(AdaptiveWorkerStarver::new(8, CountSource::Constant(4), 3))
        }),
        ("starve-thieves", || {
            Box::new(AdaptiveThiefStarver::new(8, CountSource::Constant(4), 3))
        }),
    ];
    for (kname, make) in adversaries {
        for yp in [YieldPolicy::None, YieldPolicy::ToRandom, YieldPolicy::ToAll] {
            let mut k = make();
            let cfg = ws_defaults(31).with_yield_policy(yp).with_max_rounds(cap);
            let r = run_ws(&dag, p, k.as_mut(), cfg);
            t.row([
                kname.to_string(),
                format!("{yp:?}"),
                r.completed.to_string(),
                if r.completed {
                    r.rounds.to_string()
                } else {
                    format!(">{cap} (starved)")
                },
            ]);
            // The claim: ToAll always completes; None must starve against
            // the worker-starver.
            match (kname, yp) {
                (_, YieldPolicy::ToAll) => pass &= r.completed,
                ("starve-workers", YieldPolicy::None) => pass &= !r.completed,
                _ => {}
            }
        }
    }
    let body = format!(
        "Adaptive adversaries vs yield policy (fork-join(7,2), P=8, cap {cap}\n\
         rounds). Without yields the worker-starving adversary runs only\n\
         thieves and the computation never finishes; yieldToAll forces every\n\
         process to run and restores the bound:\n\n{}",
        t.render()
    );
    ExpResult::new("A2", "Ablation: yields vs adaptive adversaries", body, pass)
}

/// L3/P1 — live invariant verification across environments.
pub fn invariants() -> ExpResult {
    let mut t = TextTable::new([
        "workload",
        "kernel",
        "structural",
        "potential",
        "milestones",
        "phases",
        "phase-succ",
    ]);
    let mut pass = true;
    for (name, dag) in small_workloads() {
        let cases: Vec<(&str, Box<dyn Kernel>)> = vec![
            ("dedicated", Box::new(DedicatedKernel::new(6))),
            (
                "benign",
                Box::new(BenignKernel::new(6, CountSource::UniformBetween(1, 6), 5)),
            ),
            (
                "adaptive",
                Box::new(AdaptiveWorkerStarver::new(6, CountSource::Constant(3), 5)),
            ),
        ];
        for (kname, mut k) in cases {
            let cfg = ws_defaults(17)
                .with_check_structural(true)
                .with_check_potential(true)
                .with_track_phases(true);
            let r = run_ws(&dag, 6, k.as_mut(), cfg);
            let ph = r.phases.clone().unwrap_or_default();
            pass &= r.completed
                && r.structural_violations == 0
                && r.potential_violations == 0
                && r.milestone_violations == 0
                && (ph.phases == 0 || ph.success_rate() > 0.25);
            t.row([
                name.to_string(),
                kname.to_string(),
                r.structural_violations.to_string(),
                r.potential_violations.to_string(),
                r.milestone_violations.to_string(),
                ph.phases.to_string(),
                f3(ph.success_rate()),
            ]);
        }
    }
    let body = format!(
        "Structural lemma (Lemma 3/Cor. 4), potential monotonicity (§4.2), the\n\
         two-milestones-per-round guarantee (§4.1), and Lemma-8 phase success\n\
         (> 1/4 required) checked live at every linearization point:\n\n{}",
        t.render()
    );
    ExpResult::new(
        "L3",
        "Lemma 3 + potential function, live-checked",
        body,
        pass,
    )
}

/// D1 — model-check the deque's relaxed semantics; exhibit the §3.3 ABA.
pub fn deque_check() -> ExpResult {
    use abp_deque::model::{explore, ProgOp, Scenario};
    use ProgOp::*;
    let scenarios: Vec<(&str, Scenario)> = vec![
        (
            "push,pop | steal",
            Scenario::new(vec![vec![Push(1), PopBottom], vec![PopTop]]),
        ),
        (
            "push,push,pop | steal",
            Scenario::new(vec![vec![Push(1), Push(2), PopBottom], vec![PopTop]]),
        ),
        (
            "push,pop,push | steal (ABA shape)",
            Scenario::new(vec![vec![Push(1), PopBottom, Push(2)], vec![PopTop]]),
        ),
        (
            "push,push,pop | steal | steal",
            Scenario::new(vec![
                vec![Push(1), Push(2), PopBottom],
                vec![PopTop],
                vec![PopTop],
            ]),
        ),
    ];
    let mut t = TextTable::new(["scenario", "tag", "histories", "violations"]);
    let mut pass = true;
    let mut untagged_caught = false;
    for (name, sc) in &scenarios {
        for tagged in [true, false] {
            let rep = explore(sc, tagged);
            if tagged {
                pass &= rep.ok();
            } else if !rep.ok() {
                untagged_caught = true;
            }
            t.row([
                name.to_string(),
                if tagged { "on" } else { "off" }.to_string(),
                rep.histories.to_string(),
                rep.violating.to_string(),
            ]);
        }
    }
    pass &= untagged_caught;
    let body = format!(
        "Exhaustive interleaving check of the §3.2 relaxed semantics. The tagged\n\
         deque is clean in every history; removing the tag lets the §3.3 ABA\n\
         interleaving consume a value twice:\n\n{}",
        t.render()
    );
    ExpResult::new(
        "D1",
        "Deque model check (relaxed semantics + ABA)",
        body,
        pass,
    )
}

/// C1 — work stealing vs centralized work sharing.
///
/// Not a table in the paper, but the comparison its introduction leans
/// on: prior schedulers "dynamically map threads onto the processors"
/// through shared structures, which both serialize under scale and fall
/// over when the kernel preempts the wrong process. Run the same loop
/// shape with one shared locked queue instead of per-process deques.
pub fn ws_vs_sharing() -> ExpResult {
    use abp_sim::{run_central, CentralConfig};
    let mut t = TextTable::new([
        "workload",
        "kernel",
        "P",
        "stealing",
        "sharing",
        "sharing/stealing",
    ]);
    let mut pass = true;
    let mut worst = 0.0f64;
    for (name, dag) in [
        ("fork-join(9,1)", gen::fork_join_tree(9, 1)),
        ("fib(16,3)", gen::fib(16, 3)),
        ("wide(128,30)", gen::wide_shallow(128, 30)),
    ] {
        for &p in &[2usize, 8, 16] {
            let mut k1 = DedicatedKernel::new(p);
            let ws = run_ws(&dag, p, &mut k1, ws_defaults(3));
            let mut k2 = DedicatedKernel::new(p);
            let cs = run_central(&dag, p, &mut k2, CentralConfig::default());
            pass &= ws.completed && cs.completed;
            let slowdown = cs.rounds as f64 / ws.rounds as f64;
            if p >= 8 {
                worst = worst.max(slowdown);
            }
            t.row([
                name.to_string(),
                "dedicated".to_string(),
                p.to_string(),
                ws.rounds.to_string(),
                cs.rounds.to_string(),
                f2(slowdown),
            ]);
        }
    }
    // The shared queue must become the bottleneck at scale.
    pass &= worst > 1.3;
    let body = format!(
        "Per-process deques vs one lock-protected shared queue, identical round\n\
         model. The shared queue serializes: its disadvantage grows with P\n\
         (worst at P ≥ 8: {:.2}x):\n\n{}",
        worst,
        t.render()
    );
    ExpResult::new(
        "C1",
        "Work stealing vs centralized work sharing",
        body,
        pass,
    )
}

/// C2 — the spawn/continue assignment choice (§3.1: "The bounds proven
/// in this paper hold for either choice").
pub fn assign_policy() -> ExpResult {
    use abp_sim::AssignPolicy;
    let mut t = TextTable::new(["workload", "P", "policy", "rounds", "throws", "ratio"]);
    let mut pass = true;
    for (name, dag) in [
        ("fork-join(10,2)", gen::fork_join_tree(10, 2)),
        ("fib(18,4)", gen::fib(18, 4)),
        ("comb(200,3,2)", gen::comb(200, 3, 2)),
        ("wavefront(24,48)", gen::wavefront(24, 48)),
    ] {
        let p = 8;
        let mut per_policy = Vec::new();
        for policy in [AssignPolicy::SpawnFirst, AssignPolicy::ContinueFirst] {
            let mut k = DedicatedKernel::new(p);
            let cfg = ws_defaults(19)
                .with_assign(policy)
                .with_check_structural(true);
            let r = run_ws(&dag, p, &mut k, cfg);
            pass &= r.completed && r.structural_violations == 0;
            per_policy.push(r.rounds);
            t.row([
                name.to_string(),
                p.to_string(),
                format!("{policy:?}"),
                r.rounds.to_string(),
                r.throws.to_string(),
                f3(r.bound_ratio()),
            ]);
        }
        // Both policies satisfy the same bound: within 2x of each other.
        let (a, b) = (per_policy[0] as f64, per_policy[1] as f64);
        pass &= a.max(b) / a.min(b) < 2.0;
    }
    let body = format!(
        "Assigning the spawned child vs the continuation when a node enables\n\
         two children. The paper proves the same bound for either choice; the\n\
         measured difference never exceeds 2x and both keep the structural\n\
         lemma intact:\n\n{}",
        t.render()
    );
    ExpResult::new("C2", "Ablation: spawn-first vs continue-first", body, pass)
}

/// H2 — the threaded runtime under oversubscription (wall clock).
///
/// The real-machine analog of A2/B1: with `P` worker threads well above
/// the processor count (the multiprogrammed setting), the yield between
/// steal scans is what keeps spinning thieves from eating the workers'
/// timeslices. Wall-clock numbers are machine-dependent, so the pass
/// criterion is correctness plus "yield never loses badly"; the timing
/// columns are the interesting output.
pub fn hood_wallclock() -> ExpResult {
    use hood::{join, Backend, BackoffKind, IdleKind, PolicySet, PoolConfig, ThreadPool};
    use std::time::Instant;

    fn fib_serial(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib_serial(n - 1) + fib_serial(n - 2)
        }
    }
    fn fib(n: u64) -> u64 {
        if n < 16 {
            return fib_serial(n);
        }
        let (x, y) = join(|| fib(n - 1), || fib(n - 2));
        x + y
    }
    const N: u64 = 30;
    const EXPECT: u64 = 832_040;

    /// Latency-bound dependency chain: each round, `a` cannot finish until
    /// another worker steals and runs `b`. With spinning (no-yield)
    /// thieves on an oversubscribed machine, every round burns OS
    /// timeslices; with yields it resolves in microseconds.
    fn ping_pong(rounds: u32) {
        use std::sync::atomic::{AtomicBool, Ordering};
        for _ in 0..rounds {
            let flag = AtomicBool::new(false);
            join(
                || {
                    while !flag.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                },
                || flag.store(true, Ordering::Release),
            );
        }
    }
    const PING_ROUNDS: u32 = 20;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let over = 4 * cores;
    let mut t = TextTable::new(["config", "P", "fib ms", "ping-pong ms", "steals", "yields"]);
    let mut pass = true;
    let mut yield_ms = 0.0f64;
    let mut noyield_ms = 0.0f64;
    let mut yield_pp = 0.0f64;
    let mut noyield_pp = 0.0f64;
    let spin_yield = PolicySet::paper().with_idle(IdleKind::Spin);
    let spin_noyield = spin_yield.with_backoff(BackoffKind::None);
    let cases: Vec<(&str, PoolConfig)> = vec![
        ("abp, P=cores", PoolConfig::default().with_num_procs(cores)),
        (
            "abp+yield, oversubscribed",
            PoolConfig::default()
                .with_num_procs(over)
                .with_policies(spin_yield),
        ),
        (
            "abp no-yield, oversubscribed",
            PoolConfig::default()
                .with_num_procs(over)
                .with_policies(spin_noyield),
        ),
        (
            "locking+yield, oversubscribed",
            PoolConfig::default()
                .with_num_procs(over)
                .with_backend(Backend::Locking)
                .with_policies(spin_yield),
        ),
    ];
    for (name, cfg) in cases {
        let p = cfg.num_procs;
        let pool = ThreadPool::with_config(cfg);
        // Warm up, then take the median of three timed runs.
        pass &= pool.install(|| fib(21)) == 10_946;
        let mut times = Vec::new();
        for _ in 0..3 {
            let t0 = Instant::now();
            let got = pool.install(|| fib(N));
            times.push(t0.elapsed().as_secs_f64() * 1e3);
            pass &= got == EXPECT;
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ms = times[1];
        // Ping-pong: median of three. Needs a second worker to steal the
        // enabling job, so it is skipped for P = 1.
        let pp = if p >= 2 {
            let mut pp_times = Vec::new();
            for _ in 0..3 {
                let t0 = Instant::now();
                pool.install(|| ping_pong(PING_ROUNDS));
                pp_times.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            pp_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
            pp_times[1]
        } else {
            f64::NAN
        };
        if name.starts_with("abp+yield") {
            yield_ms = ms;
            yield_pp = pp;
        }
        if name.starts_with("abp no-yield") {
            noyield_ms = ms;
            noyield_pp = pp;
        }
        let st = pool.stats();
        t.row([
            name.to_string(),
            p.to_string(),
            f2(ms),
            if pp.is_nan() {
                "n/a".to_string()
            } else {
                f2(pp)
            },
            st.steals.to_string(),
            st.yields.to_string(),
        ]);
    }
    // Yield must not lose badly on throughput, and must win clearly on
    // the latency-bound dependency chain when the machine is shared.
    pass &= yield_ms < noyield_ms * 1.5;
    let cores_scarce = over > cores;
    if cores_scarce {
        pass &= noyield_pp > 2.0 * yield_pp;
    }
    let body = format!(
        "fib({N}) on the threaded runtime, {cores} core(s), oversubscribed P = {over}\n\
         (pure spinning, parking disabled — the original Hood discipline):\n\n{}",
        t.render()
    );
    ExpResult::new("H2", "Threaded runtime under oversubscription", body, pass)
}

/// O1 — the observability pipeline end to end: a real pool run and a
/// simulator run exported through the *same* telemetry schema.
///
/// Runs a fork-join workload on a telemetry-enabled [`hood::ThreadPool`],
/// snapshots at shutdown, writes `target/trace.json` (Chrome trace-event
/// JSON, loadable in Perfetto) plus `target/metrics.json`; then runs the
/// simulator with tracing on, adapts its [`abp_sim::Trace`] through
/// [`abp_sim::telemetry_from_trace`], and writes `target/trace_sim.json`.
/// Pass requires both exports to parse and the event-derived steal counts
/// to agree exactly with the independent counters on each side.
pub fn telemetry() -> ExpResult {
    use abp_telemetry::{chrome_trace, json, metrics_json, StealOutcome, TelemetryConfig};
    use hood::{join, PoolConfig, ThreadPool};

    fn fib(n: u64) -> u64 {
        if n < 12 {
            let (mut a, mut b) = (0u64, 1u64);
            for _ in 0..n {
                let c = a + b;
                a = b;
                b = c;
            }
            return a;
        }
        let (x, y) = join(|| fib(n - 1), || fib(n - 2));
        x + y
    }

    let mut body = String::new();
    let mut pass = true;

    // -- real pool -------------------------------------------------------
    let pool = ThreadPool::with_config(PoolConfig {
        num_procs: 4,
        telemetry: Some(TelemetryConfig {
            ring_capacity: 1 << 16,
        }),
        ..PoolConfig::default()
    });
    let got = pool.install(|| fib(22));
    pass &= got == 17_711;
    let report = pool.shutdown();
    let snap = report.telemetry.as_ref().expect("telemetry configured");
    pass &= snap.total_dropped() == 0;

    let trace = chrome_trace(snap);
    let metrics = metrics_json(snap);
    let _ = std::fs::create_dir_all("target");
    let trace_ok = std::fs::write("target/trace.json", &trace).is_ok();
    let metrics_ok = std::fs::write("target/metrics.json", &metrics).is_ok();
    pass &= json::parse(&trace).is_ok() && json::parse(&metrics).is_ok();

    let mut t = TextTable::new([
        "worker", "jobs", "attempts", "steals", "aborts", "empties", "events", "dropped",
    ]);
    for (i, (w, st)) in snap.workers.iter().zip(&report.per_worker).enumerate() {
        // The trace and the counters are two independent records of the
        // same execution; shutdown() quiesces first, so they must agree
        // event-for-event. `steal_attempts` counts injector polls too
        // (each is a counted attempt landing in `injects` or `empties`),
        // so the popTop events and the poll events are reconciled
        // additively against the stats.
        pass &= w.steal_attempts() + w.injector_polls() == st.steal_attempts;
        pass &= w.steals_with(StealOutcome::Hit) == st.steals;
        pass &= w.steals_with(StealOutcome::Abort) == st.aborts;
        pass &= w.steals_with(StealOutcome::Empty) + (w.injector_polls() - w.injector_hits())
            == st.empties;
        pass &= w.injector_hits() == st.injects;
        pass &= st.attempts_balance();
        t.row([
            i.to_string(),
            st.jobs.to_string(),
            st.steal_attempts.to_string(),
            st.steals.to_string(),
            st.aborts.to_string(),
            st.empties.to_string(),
            w.events.len().to_string(),
            w.dropped.to_string(),
        ]);
    }
    let lat = snap.steal_latency_all();
    let run = snap.job_run_time_all();
    writeln!(
        body,
        "pool: fib(22) on P=4, {} jobs, {} steal attempts; trace {} events\n\
         steal latency: n={}, mean {:.0} ns, p90 ≤ {} ns; job run: n={}, mean {:.0} ns\n\
         wrote target/trace.json ({} bytes{}) and target/metrics.json ({} bytes{})\n\n{}",
        report.stats.jobs,
        report.stats.steal_attempts,
        snap.workers.iter().map(|w| w.events.len()).sum::<usize>(),
        lat.count(),
        lat.mean(),
        lat.quantile_upper_bound(0.9),
        run.count(),
        run.mean(),
        trace.len(),
        if trace_ok { "" } else { ", WRITE FAILED" },
        metrics.len(),
        if metrics_ok { "" } else { ", WRITE FAILED" },
        t.render()
    )
    .unwrap();

    // -- simulator through the same schema -------------------------------
    let dag = gen::fib(14, 3);
    let p = 6;
    let mut k = BenignKernel::new(p, CountSource::UniformBetween(2, 6), 11);
    let cfg = ws_defaults(23).with_trace(true);
    let r = run_ws(&dag, p, &mut k, cfg);
    pass &= r.completed;
    let sim_trace = r.trace.as_ref().expect("trace requested");
    let sim_snap = abp_sim::telemetry_from_trace(sim_trace);
    let sim_chrome = chrome_trace(&sim_snap);
    let sim_ok = std::fs::write("target/trace_sim.json", &sim_chrome).is_ok();
    pass &= json::parse(&sim_chrome).is_ok();
    let sim_attempts: u64 = sim_snap.workers.iter().map(|w| w.steal_attempts()).sum();
    pass &= sim_attempts == r.steal_attempts;
    let sim_hits: u64 = sim_snap
        .workers
        .iter()
        .map(|w| w.steals_with(StealOutcome::Hit))
        .sum();
    pass &= sim_hits == r.successful_steals;
    writeln!(
        body,
        "sim: fib(14,3) on P={p} under a benign kernel, {} rounds;\n\
         trace → telemetry: {} steal attempts ({} hits) = simulator counters;\n\
         wrote target/trace_sim.json ({} bytes{}) — same schema, same loader",
        r.rounds,
        sim_attempts,
        sim_hits,
        sim_chrome.len(),
        if sim_ok { "" } else { ", WRITE FAILED" },
    )
    .unwrap();

    ExpResult::new(
        "O1",
        "Telemetry: one trace schema, pool + simulator",
        body,
        pass,
    )
}

/// PL1 — policy matrix: pluggable victim/backoff/idle on both surfaces.
///
/// Sweeps the `abp-core` policy sets over a workload × P matrix on the
/// simulator (deterministic, seeded) and over the live pool, reporting
/// throws, steal attempts, and T against the paper bound. Also emits
/// `target/BENCH_policies.json`, validated with the `abp-telemetry` JSON
/// parser — the sim half of that file is bit-reproducible across runs.
pub fn policies(small: bool) -> ExpResult {
    use abp_sim::{BackoffKind, IdleKind, PolicySet, VictimKind};
    use abp_telemetry::json;
    use hood::{join, PoolConfig, ThreadPool};

    let policy_sets: Vec<PolicySet> = vec![
        PolicySet::paper(),
        PolicySet::paper().with_victim(VictimKind::RoundRobin),
        PolicySet::paper().with_victim(VictimKind::LastVictim),
        PolicySet::paper().with_backoff(BackoffKind::ExpJitter { base: 4, cap: 64 }),
        PolicySet::paper().with_backoff(BackoffKind::SpinThenYield {
            spin: 8,
            threshold: 3,
        }),
        PolicySet::paper().with_idle(IdleKind::ParkAfter {
            threshold: 8,
            park_len: 16,
        }),
    ];
    let dags: Vec<(&str, Dag)> = if small {
        vec![
            ("fib(12,3)", gen::fib(12, 3)),
            ("wide(32,20)", gen::wide_shallow(32, 20)),
        ]
    } else {
        vec![
            ("fib(18,4)", gen::fib(18, 4)),
            ("wide(256,50)", gen::wide_shallow(256, 50)),
        ]
    };
    let ps_list: Vec<usize> = if small { vec![4] } else { vec![4, 8] };

    let mut pass = true;
    let mut t = TextTable::new([
        "policy", "workload", "kernel", "P", "rounds", "throws", "attempts", "hits", "ratio",
    ]);
    let mut sim_json = String::new();
    for ps in &policy_sets {
        for (wname, dag) in &dags {
            for &p in &ps_list {
                let kernels: Vec<(&str, Box<dyn Kernel>)> = vec![
                    ("dedicated", Box::new(DedicatedKernel::new(p))),
                    (
                        "benign",
                        Box::new(BenignKernel::new(p, CountSource::UniformBetween(2, p), 41)),
                    ),
                ];
                for (kname, mut k) in kernels {
                    let cfg = ws_defaults(29).with_policies(*ps);
                    let r = run_ws(dag, p, k.as_mut(), cfg);
                    // Every policy must complete the run, keep the steal
                    // accounting identity, and stamp its identity on the
                    // report.
                    pass &= r.completed;
                    pass &= r.steal_accounting_balanced();
                    pass &= r.policy.starts_with(&ps.label());
                    // Milestone accounting (and thus the Lemma-7 check)
                    // is only meaningful for non-spinning, non-parking
                    // sets; for those, the paper bound must hold with a
                    // modest constant.
                    if ps.preserves_milestones() {
                        pass &= r.milestone_violations == 0;
                        pass &= r.bound_ratio() < 4.0;
                    }
                    t.row([
                        ps.label(),
                        wname.to_string(),
                        kname.to_string(),
                        p.to_string(),
                        r.rounds.to_string(),
                        r.throws.to_string(),
                        r.steal_attempts.to_string(),
                        r.successful_steals.to_string(),
                        f3(r.bound_ratio()),
                    ]);
                    if !sim_json.is_empty() {
                        sim_json.push_str(",\n");
                    }
                    write!(
                        sim_json,
                        "    {{\"policy\":\"{}\",\"workload\":\"{}\",\"kernel\":\"{}\",\
                         \"p\":{},\"rounds\":{},\"throws\":{},\"attempts\":{},\"hits\":{},\
                         \"aborts\":{},\"empties\":{},\"bound_ratio\":{:.6},\
                         \"milestone_safe\":{}}}",
                        r.policy,
                        wname,
                        kname,
                        p,
                        r.rounds,
                        r.throws,
                        r.steal_attempts,
                        r.successful_steals,
                        r.steal_aborts,
                        r.steal_empties,
                        r.bound_ratio(),
                        ps.preserves_milestones(),
                    )
                    .unwrap();
                }
            }
        }
    }

    // -- live pool: same policy sets drive the hood steal loop -----------
    fn fib(n: u64) -> u64 {
        if n < 12 {
            let (mut a, mut b) = (0u64, 1u64);
            for _ in 0..n {
                let c = a + b;
                a = b;
                b = c;
            }
            return a;
        }
        let (x, y) = join(|| fib(n - 1), || fib(n - 2));
        x + y
    }
    // Forced-steal ping-pong (as in H2): each round's second closure must
    // be stolen and run by another worker before the first can finish, so
    // every policy's actual steal path gets exercised even on one core.
    fn ping_pong(rounds: u32) {
        use std::sync::atomic::{AtomicBool, Ordering};
        for _ in 0..rounds {
            let flag = AtomicBool::new(false);
            join(
                || {
                    while !flag.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                },
                || flag.store(true, Ordering::Release),
            );
        }
    }
    let (fib_n, fib_expect) = if small {
        (18u64, 2_584u64)
    } else {
        (22u64, 17_711u64)
    };
    let ping_rounds = if small { 4 } else { 8 };
    let mut pt = TextTable::new([
        "policy", "P", "jobs", "attempts", "steals", "yields", "parks",
    ]);
    let mut pool_json = String::new();
    for ps in &policy_sets {
        // Keep the pool's engineering default (park when idle) except for
        // the set that explicitly probes the idle axis.
        let pool_ps = if matches!(ps.idle, IdleKind::Spin) {
            ps.with_idle(PoolConfig::DEFAULT_IDLE)
        } else {
            *ps
        };
        let p = 4;
        let pool = ThreadPool::with_config(
            PoolConfig::default()
                .with_num_procs(p)
                .with_policies(pool_ps),
        );
        pass &= pool.install(|| fib(fib_n)) == fib_expect;
        pool.install(|| ping_pong(ping_rounds));
        let report = pool.shutdown();
        pass &= report.stats.steals >= ping_rounds as u64;
        let st = &report.stats;
        pass &= st.attempts_balance();
        pt.row([
            pool_ps.label(),
            p.to_string(),
            st.jobs.to_string(),
            st.steal_attempts.to_string(),
            st.steals.to_string(),
            st.yields.to_string(),
            st.parks.to_string(),
        ]);
        if !pool_json.is_empty() {
            pool_json.push_str(",\n");
        }
        write!(
            pool_json,
            "    {{\"policy\":\"{}\",\"p\":{},\"jobs\":{},\"attempts\":{},\"steals\":{},\
             \"aborts\":{},\"empties\":{},\"yields\":{},\"parks\":{}}}",
            pool_ps.label(),
            p,
            st.jobs,
            st.steal_attempts,
            st.steals,
            st.aborts,
            st.empties,
            st.yields,
            st.parks,
        )
        .unwrap();
    }

    // -- machine-readable artifact ---------------------------------------
    let artifact = format!(
        "{{\n  \"bench\": \"policies\",\n  \"mode\": \"{}\",\n  \"sim\": [\n{}\n  ],\n  \
         \"pool\": [\n{}\n  ]\n}}\n",
        if small { "small" } else { "full" },
        sim_json,
        pool_json
    );
    pass &= json::parse(&artifact).is_ok();
    let _ = std::fs::create_dir_all("target");
    let wrote = std::fs::write("target/BENCH_policies.json", &artifact).is_ok();

    let body = format!(
        "Policy matrix over {} sets × {} workloads × P ∈ {:?} (sim, seeded) and the\n\
         live pool (fib({fib_n}), P=4). ratio = T/(T1/P_A + Tinf·P/P_A); milestone-safe\n\
         sets must meet the paper bound. wrote target/BENCH_policies.json ({} bytes{})\n\n\
         simulator:\n{}\nlive pool:\n{}",
        policy_sets.len(),
        dags.len(),
        ps_list,
        artifact.len(),
        if wrote { "" } else { ", WRITE FAILED" },
        t.render(),
        pt.render()
    );
    ExpResult::new(
        "PL1",
        "Policy layer: victim/backoff/idle matrix",
        body,
        pass,
    )
}

/// SV1 — the external-submission front door under live load.
///
/// M non-worker submitter threads drive a telemetry-enabled pool through
/// [`hood::ThreadPool::spawn`] / [`hood::ThreadPool::spawn_batch`] while
/// the workers also churn on internal fork-join work. Pass requires
/// exactly-once execution of every submission, the extended accounting
/// identity (`attempts == steals + aborts + empties + injects`), and the
/// injector metrics (submissions, shard contention, inject-to-start
/// latency) to reconcile across the counter and event records. Emits
/// `target/BENCH_serve.json`, validated with the in-repo JSON parser.
pub fn serve(small: bool) -> ExpResult {
    use abp_telemetry::{json, metrics_json, TelemetryConfig};
    use hood::{join, PoolConfig, ThreadPool};
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::Arc;

    let p = 4;
    let submitters = 4;
    let jobs_per_submitter: usize = if small { 100 } else { 1_000 };
    let total = submitters * jobs_per_submitter;

    let pool = Arc::new(ThreadPool::with_config(
        PoolConfig::default()
            .with_num_procs(p)
            .with_telemetry(TelemetryConfig {
                ring_capacity: 1 << 16,
            }),
    ));
    let counts: Arc<Vec<AtomicU8>> = Arc::new((0..total).map(|_| AtomicU8::new(0)).collect());

    // Internal churn so injected jobs compete with deque traffic.
    let churn_pool = Arc::clone(&pool);
    let churn = std::thread::spawn(move || {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        churn_pool.install(|| fib(if small { 16 } else { 20 }))
    });

    let t0 = std::time::Instant::now();
    let mut handles = Vec::new();
    for s in 0..submitters {
        let pool = Arc::clone(&pool);
        let counts = Arc::clone(&counts);
        handles.push(std::thread::spawn(move || {
            let base = s * jobs_per_submitter;
            let mut next = base;
            let end = base + jobs_per_submitter;
            while next < end {
                // Alternate the two submission paths; batches take the
                // single-shard-lock fast path.
                if (next - base).is_multiple_of(3) {
                    let len = (end - next).min(5);
                    let jobs: Vec<_> = (next..next + len)
                        .map(|id| {
                            let counts = Arc::clone(&counts);
                            move || {
                                counts[id].fetch_add(1, Ordering::Relaxed);
                            }
                        })
                        .collect();
                    pool.spawn_batch(jobs);
                    next += len;
                } else {
                    let id = next;
                    let counts = Arc::clone(&counts);
                    pool.spawn(move || {
                        counts[id].fetch_add(1, Ordering::Relaxed);
                    });
                    next += 1;
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let churn_ok = churn.join().unwrap() == if small { 987 } else { 6_765 };
    while counts.iter().any(|c| c.load(Ordering::Relaxed) == 0) {
        std::thread::yield_now();
    }
    let serve_ms = t0.elapsed().as_secs_f64() * 1e3;
    let report = Arc::try_unwrap(pool)
        .unwrap_or_else(|_| panic!("all clones joined"))
        .shutdown();

    let mut pass = churn_ok;
    let exactly_once = counts.iter().all(|c| c.load(Ordering::Relaxed) == 1);
    pass &= exactly_once;
    // `install` roots also enter through the front door, so the churn
    // thread's install contributes one extra submission.
    let expected = total as u64 + 1;
    let st = &report.stats;
    pass &= st.attempts_balance();
    pass &= st.parks_balance();
    if report.sleep_kind == hood::SleepKind::Eventcount {
        pass &= report.sleep.wakes_sent >= report.sleep.hits_after_unpark;
    }
    pass &= st.injects == expected;
    let snap = report.telemetry.as_ref().expect("telemetry configured");
    let inj = &snap.injector;
    pass &= inj.submissions == expected;
    pass &= inj.hits == st.injects;
    pass &= inj.polls >= inj.hits;
    pass &= inj.latency.count() == expected;

    let mut t = TextTable::new(["worker", "jobs", "attempts", "steals", "empties", "injects"]);
    for (i, w) in report.per_worker.iter().enumerate() {
        pass &= w.attempts_balance();
        t.row([
            i.to_string(),
            w.jobs.to_string(),
            w.steal_attempts.to_string(),
            w.steals.to_string(),
            w.empties.to_string(),
            w.injects.to_string(),
        ]);
    }

    // -- machine-readable artifact ---------------------------------------
    let artifact = format!(
        "{{\n  \"bench\": \"serve\",\n  \"mode\": \"{}\",\n  \"p\": {},\n  \
         \"submitters\": {},\n  \"submitted\": {},\n  \"executed_once\": {},\n  \
         \"elapsed_ms\": {:.3},\n  \"injector\": {{\"shards\": {}, \"submissions\": {}, \
         \"contention\": {}, \"polls\": {}, \"hits\": {}, \
         \"latency\": {{\"count\": {}, \"mean_ns\": {:.1}, \"p50_ns\": {}, \"p99_ns\": {}}}}},\n  \
         \"stats\": {{\"jobs\": {}, \"attempts\": {}, \"steals\": {}, \"aborts\": {}, \
         \"empties\": {}, \"injects\": {}}}\n}}\n",
        if small { "small" } else { "full" },
        p,
        submitters,
        total,
        exactly_once,
        serve_ms,
        inj.shards,
        inj.submissions,
        inj.contention,
        inj.polls,
        inj.hits,
        inj.latency.count(),
        inj.latency.mean(),
        inj.latency.quantile_upper_bound(0.5),
        inj.latency.quantile_upper_bound(0.99),
        st.jobs,
        st.steal_attempts,
        st.steals,
        st.aborts,
        st.empties,
        st.injects,
    );
    pass &= json::parse(&artifact).is_ok();
    pass &= json::parse(&metrics_json(snap)).is_ok();
    let _ = std::fs::create_dir_all("target");
    let wrote = std::fs::write("target/BENCH_serve.json", &artifact).is_ok();

    let body = format!(
        "{submitters} submitter threads × {jobs_per_submitter} jobs into P={p} workers \
         (plus internal fork-join churn), {:.1} ms\n\
         exactly-once: {exactly_once}; injector: {} shards, {} submissions, {} polls \
         ({} hits), {} shard contentions\n\
         inject-to-start latency: n={}, mean {:.0} ns, p50 ≤ {} ns, p99 ≤ {} ns\n\
         wrote target/BENCH_serve.json ({} bytes{})\n\n{}",
        serve_ms,
        inj.shards,
        inj.submissions,
        inj.polls,
        inj.hits,
        inj.contention,
        inj.latency.count(),
        inj.latency.mean(),
        inj.latency.quantile_upper_bound(0.5),
        inj.latency.quantile_upper_bound(0.99),
        artifact.len(),
        if wrote { "" } else { ", WRITE FAILED" },
        t.render()
    );
    ExpResult::new(
        "SV1",
        "External submission: the sharded front door",
        body,
        pass,
    )
}

/// HP1 — the hot-path memory-ordering relaxation: perf trajectory plus
/// behavioural goldens.
///
/// Three parts, one artifact (`target/BENCH_hotpath.json`, validated with
/// the in-repo JSON parser; a blessed copy is committed at the repo root):
///
/// 1. **Sim-counter sanity** — the relaxation touches only memory
///    orderings, so the simulator's deterministic steal/abort accounting
///    under `PolicySet::paper()` must still match the pre-relaxation
///    goldens (the same values `crates/sim/tests/policy_regression.rs`
///    pins) exactly.
/// 2. **Owner ping-pong before/after** — `pushBottom`/`popBottom` pairs
///    timed under the blanket-SeqCst profile and the relaxed profile in
///    this same binary (both monomorphizations of the same generic code);
///    the acceptance bar is a ≥ 10% median improvement.
/// 3. **Four-way identity** — a live pool doing fork-join work plus
///    external submissions must keep
///    `attempts == steals + aborts + empties + injects`.
pub fn hotpath() -> ExpResult {
    use abp_deque::{new_with_order, OrderProfile, RelaxedProtocol, SeqCstProtocol};
    use abp_telemetry::json;
    use hood::{join, ThreadPool};
    use std::time::Instant;

    let mut pass = true;
    let mut body = String::new();

    // -- (1) sim-counter sanity against the policy-regression goldens ----
    // (dag, p, seed, kernel, expected attempts/steals/throws) — the
    // steal-accounting columns of the policy_regression corpus.
    let cases: Vec<(&str, Dag, usize, u64, Box<dyn Kernel>, u64, u64, u64)> = vec![
        (
            "fork-join(8,2)/dedicated",
            gen::fork_join_tree(8, 2),
            4,
            11,
            Box::new(DedicatedKernel::new(4)),
            21,
            5,
            3,
        ),
        (
            "fib(14,3)/dedicated",
            gen::fib(14, 3),
            8,
            7,
            Box::new(DedicatedKernel::new(8)),
            103,
            23,
            15,
        ),
        (
            "wide(64,25)/benign",
            gen::wide_shallow(64, 25),
            6,
            3,
            Box::new(BenignKernel::new(6, CountSource::UniformBetween(2, 6), 99)),
            88,
            19,
            12,
        ),
    ];
    let mut t = TextTable::new(["case", "attempts", "steals", "throws", "golden"]);
    let mut sim_json = String::new();
    for (name, dag, p, seed, mut k, g_attempts, g_steals, g_throws) in cases {
        let cfg = WsConfig::default().with_seed(seed);
        assert_eq!(cfg.policies, abp_sim::PolicySet::paper());
        let r = run_ws(&dag, p, k.as_mut(), cfg);
        let ok = r.completed
            && r.steal_accounting_balanced()
            && r.steal_attempts == g_attempts
            && r.successful_steals == g_steals
            && r.throws == g_throws;
        pass &= ok;
        t.row([
            name.to_string(),
            r.steal_attempts.to_string(),
            r.successful_steals.to_string(),
            r.throws.to_string(),
            if ok { "match" } else { "DRIFT" }.to_string(),
        ]);
        if !sim_json.is_empty() {
            sim_json.push_str(",\n");
        }
        write!(
            sim_json,
            "    {{\"case\":\"{}\",\"attempts\":{},\"steals\":{},\"throws\":{},\"golden\":{}}}",
            name, r.steal_attempts, r.successful_steals, r.throws, ok
        )
        .unwrap();
    }

    // -- (2) owner ping-pong, blanket SeqCst vs relaxed protocol ---------
    fn pingpong_ns<P: OrderProfile>() -> f64 {
        const OPS: u64 = 200_000;
        const SAMPLES: usize = 9;
        let (w, _s) = new_with_order::<u64, P>(1 << 12);
        let mut per_op: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let t0 = Instant::now();
            for i in 0..OPS {
                w.push_bottom(std::hint::black_box(i)).unwrap();
                std::hint::black_box(w.pop_bottom());
            }
            per_op.push(t0.elapsed().as_nanos() as f64 / OPS as f64);
        }
        per_op.sort_by(|a, b| a.partial_cmp(b).unwrap());
        per_op[SAMPLES / 2]
    }
    // Warm both paths once before timing.
    let _ = (
        pingpong_ns::<SeqCstProtocol>(),
        pingpong_ns::<RelaxedProtocol>(),
    );
    let seq_ns = pingpong_ns::<SeqCstProtocol>();
    let rel_ns = pingpong_ns::<RelaxedProtocol>();
    let improvement = 1.0 - rel_ns / seq_ns;
    pass &= improvement >= 0.10;

    // -- (3) four-way identity on a live pool ----------------------------
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    let pool = ThreadPool::new(4);
    pass &= pool.install(|| fib(18)) == 2_584;
    let submitted = 64u64;
    let done = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    for _ in 0..submitted {
        let done = std::sync::Arc::clone(&done);
        pool.spawn(move || {
            done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
    }
    while done.load(std::sync::atomic::Ordering::Relaxed) < submitted {
        std::thread::yield_now();
    }
    let report = pool.shutdown();
    let st = &report.stats;
    pass &= st.attempts_balance();
    pass &= st.parks_balance();
    if report.sleep_kind == hood::SleepKind::Eventcount {
        pass &= report.sleep.wakes_sent >= report.sleep.hits_after_unpark;
    }
    // install roots also enter through the injector.
    pass &= st.injects >= submitted;
    for (i, w) in report.per_worker.iter().enumerate() {
        pass &= w.attempts_balance();
        let _ = i;
    }

    // -- machine-readable artifact ---------------------------------------
    let artifact = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"pingpong\": {{\"seqcst_ns\": {:.1}, \
         \"relaxed_ns\": {:.1}, \"median_improvement\": {:.4}}},\n  \"sim_goldens\": [\n{}\n  ],\n  \
         \"pool\": {{\"attempts\": {}, \"steals\": {}, \"aborts\": {}, \"empties\": {}, \
         \"injects\": {}, \"balanced\": {}}}\n}}\n",
        seq_ns,
        rel_ns,
        improvement,
        sim_json,
        st.steal_attempts,
        st.steals,
        st.aborts,
        st.empties,
        st.injects,
        st.attempts_balance(),
    );
    pass &= json::parse(&artifact).is_ok();
    let _ = std::fs::create_dir_all("target");
    let wrote = std::fs::write("target/BENCH_hotpath.json", &artifact).is_ok();

    writeln!(
        body,
        "owner ping-pong: SeqCst {seq_ns:.1} ns/op → relaxed {rel_ns:.1} ns/op \
         ({:.1}% median improvement; bar ≥ 10%)\n\
         pool identity: attempts {} == steals {} + aborts {} + empties {} + injects {}\n\
         wrote target/BENCH_hotpath.json ({} bytes{})\n\nsim goldens (PolicySet::paper()):\n{}",
        improvement * 100.0,
        st.steal_attempts,
        st.steals,
        st.aborts,
        st.empties,
        st.injects,
        artifact.len(),
        if wrote { "" } else { ", WRITE FAILED" },
        t.render()
    )
    .unwrap();

    ExpResult::new(
        "HP1",
        "Hot path: memory-ordering relaxation trajectory",
        body,
        pass,
    )
}

/// ID1 — the sleep/wake subsystem: eventcount wake-one vs the legacy
/// condvar herd.
///
/// Both backends are runtime-selectable (`PoolConfig::with_sleep`), so
/// one binary measures both. The workload is the cold-submit path the
/// eventcount exists for: a pool whose workers are ALL parked under the
/// untimed `ParkUntilWake` policy receives a single external job; the
/// job stamps its own submit-to-start latency. Between samples the pool
/// drains back to fully parked, so every sample exercises the
/// park/announce/commit/wake machinery end to end (the run doubles as a
/// trickle load for the spurious-wake and accounting counters).
///
/// Pass requires, under the eventcount: **zero timed-out parks** (untimed
/// parks cannot time out — the missed-wakeup race is closed by
/// construction, not by a bounded nap), `parks == unparks`,
/// `wakes_sent >= hits_after_unpark`, and a **≥ 20% median cold-submit
/// latency improvement** over the condvar baseline (which pays a
/// `notify_all` herd plus serial sleep-mutex reacquisition per wake).
/// Emits `target/BENCH_idle.json`, validated with the in-repo JSON
/// parser; a blessed copy is committed at the repo root.
pub fn idle(small: bool) -> ExpResult {
    use abp_telemetry::json;
    use hood::{IdleKind, PolicySet, PoolConfig, PoolStats, SleepKind, SleepStats, ThreadPool};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let p = 8;
    let samples: usize = if small { 31 } else { 101 };

    fn wait_parked(pool: &ThreadPool, p: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if pool.sleeping_workers() == p {
                return true;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        pool.sleeping_workers() == p
    }

    /// Median cold-submit latencies plus end-of-run accounting for one
    /// backend. Latency is stamped *inside* the job (`t0.elapsed()` with
    /// `t0` taken just before `spawn`), so the producer's polite
    /// sleep-wait while it waits for the stamp never inflates the
    /// measurement — it only keeps the producer off the woken worker's
    /// core.
    ///
    /// A background **metronome** thread (a 25 µs sleep loop) runs for
    /// the whole sampling window under *both* backends. Without it the
    /// comparison is rigged in the condvar's favour: its 100 µs nap
    /// timers keep the CPU/scheduler out of deep idle as a side effect,
    /// while the eventcount's untimed parks leave the machine truly
    /// quiescent — so the eventcount's wakes would be charged several
    /// extra microseconds of platform idle-exit cost that is not the
    /// wake path's doing. The metronome pins both backends to the same
    /// platform state; what remains is the protocol difference
    /// (one targeted unpark vs a `notify_all` herd with serial
    /// sleep-mutex reacquisition). The quiescence the metronome masks
    /// is asserted separately: zero timed-out parks means the
    /// eventcount itself generates no periodic timer churn at all.
    fn cold_submit(kind: SleepKind, p: usize, samples: usize) -> (Vec<f64>, SleepStats, PoolStats) {
        use std::sync::atomic::AtomicBool;
        let pool = ThreadPool::with_config(
            PoolConfig::default()
                .with_num_procs(p)
                .with_policies(
                    PolicySet::paper().with_idle(IdleKind::ParkUntilWake { threshold: 4 }),
                )
                .with_sleep(kind),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop_c = Arc::clone(&stop);
        let metronome = std::thread::spawn(move || {
            while !stop_c.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_micros(25));
            }
        });
        let mut lats = Vec::with_capacity(samples);
        for _ in 0..samples {
            // The condvar fallback's sleepers oscillate through 100 µs
            // naps, so a fully-parked state is transient there; take it
            // when it shows and fall through after the timeout.
            let _ = wait_parked(&pool, p, Duration::from_millis(200));
            let stamp = Arc::new(AtomicU64::new(0));
            let s = Arc::clone(&stamp);
            let t0 = Instant::now();
            pool.spawn(move || {
                s.store(t0.elapsed().as_nanos().max(1) as u64, Ordering::Release);
            });
            while stamp.load(Ordering::Acquire) == 0 {
                std::thread::sleep(Duration::from_micros(20));
            }
            lats.push(stamp.load(Ordering::Acquire) as f64);
        }
        stop.store(true, Ordering::Relaxed);
        metronome.join().unwrap();
        let report = pool.shutdown();
        (lats, report.sleep, report.stats)
    }

    fn quantile(sorted: &[f64], q: f64) -> f64 {
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    }

    // Warm both paths once (thread spawn + first park) before timing.
    let _ = cold_submit(SleepKind::Eventcount, p, 3);
    let _ = cold_submit(SleepKind::CondvarFallback, p, 3);

    let (mut ec_lat, ec_sleep, ec_stats) = cold_submit(SleepKind::Eventcount, p, samples);
    let (mut cv_lat, cv_sleep, cv_stats) = cold_submit(SleepKind::CondvarFallback, p, samples);
    ec_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    cv_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let ec_med = quantile(&ec_lat, 0.5);
    let cv_med = quantile(&cv_lat, 0.5);
    let improvement = 1.0 - ec_med / cv_med;

    let mut pass = true;
    // Untimed parks cannot time out; any nonzero count means a worker
    // fell back to a bounded nap, i.e. the race is not closed.
    pass &= ec_sleep.timed_out_parks == 0;
    pass &= improvement >= 0.20;
    pass &= ec_stats.parks_balance();
    pass &= cv_stats.parks_balance();
    pass &= ec_sleep.wakes_sent >= ec_sleep.hits_after_unpark;

    let mut t = TextTable::new([
        "backend",
        "p50 ns",
        "p90 ns",
        "timed-out",
        "wakes",
        "spurious",
    ]);
    for (name, lat, sl) in [
        ("eventcount", &ec_lat, &ec_sleep),
        ("condvar", &cv_lat, &cv_sleep),
    ] {
        t.row([
            name.to_string(),
            format!("{:.0}", quantile(lat, 0.5)),
            format!("{:.0}", quantile(lat, 0.9)),
            sl.timed_out_parks.to_string(),
            sl.wakes_sent.to_string(),
            sl.wakes_spurious.to_string(),
        ]);
    }

    // -- machine-readable artifact ---------------------------------------
    let artifact = format!(
        "{{\n  \"bench\": \"idle\",\n  \"mode\": \"{}\",\n  \"p\": {},\n  \"samples\": {},\n  \
         \"cold_submit\": {{\"eventcount_p50_ns\": {:.1}, \"eventcount_p90_ns\": {:.1}, \
         \"condvar_p50_ns\": {:.1}, \"condvar_p90_ns\": {:.1}, \
         \"median_improvement\": {:.4}}},\n  \
         \"eventcount\": {{\"timed_out_parks\": {}, \"wakes_sent\": {}, \"wakes_skipped\": {}, \
         \"wakes_spurious\": {}, \"hits_after_unpark\": {}, \"parks\": {}, \"unparks\": {}}},\n  \
         \"condvar\": {{\"timed_out_parks\": {}, \"wakes_sent\": {}, \"parks\": {}, \
         \"unparks\": {}}}\n}}\n",
        if small { "small" } else { "full" },
        p,
        samples,
        ec_med,
        quantile(&ec_lat, 0.9),
        cv_med,
        quantile(&cv_lat, 0.9),
        improvement,
        ec_sleep.timed_out_parks,
        ec_sleep.wakes_sent,
        ec_sleep.wakes_skipped,
        ec_sleep.wakes_spurious,
        ec_sleep.hits_after_unpark,
        ec_stats.parks,
        ec_stats.unparks,
        cv_sleep.timed_out_parks,
        cv_sleep.wakes_sent,
        cv_stats.parks,
        cv_stats.unparks,
    );
    pass &= json::parse(&artifact).is_ok();
    let _ = std::fs::create_dir_all("target");
    let wrote = std::fs::write("target/BENCH_idle.json", &artifact).is_ok();

    let body = format!(
        "cold submit to a fully parked P={p} pool, {samples} samples per backend\n\
         median: eventcount {ec_med:.0} ns vs condvar {cv_med:.0} ns \
         ({:.1}% improvement; bar ≥ 20%)\n\
         eventcount timed-out parks: {} (bar: exactly 0 — untimed parks cannot time out)\n\
         accounting: eventcount parks {} == unparks {}; condvar parks {} == unparks {}\n\
         wrote target/BENCH_idle.json ({} bytes{})\n\n{}",
        improvement * 100.0,
        ec_sleep.timed_out_parks,
        ec_stats.parks,
        ec_stats.unparks,
        cv_stats.parks,
        cv_stats.unparks,
        artifact.len(),
        if wrote { "" } else { ", WRITE FAILED" },
        t.render()
    );
    ExpResult::new(
        "ID1",
        "Idle path: eventcount wake-one vs condvar herd",
        body,
        pass,
    )
}

/// DP1 — the data-parallel layer: adaptive splitting vs sequential
/// baselines and vs eager grain recursion.
///
/// Three claims, one artifact (`target/BENCH_par.json`, validated with
/// the in-repo JSON parser):
///
/// 1. **Speedup** — `par_sort_unstable` and `par_iter().map().reduce()`
///    on a P = 8 pool beat their single-thread sequential baselines by
///    ≥ 3× — enforced only when the machine actually has ≥ 8 cores
///    (the H2 `cores_scarce` idiom); on smaller hosts the measured
///    speedups are reported informationally and the bar is waived.
/// 2. **Task economy** — the adaptive splitter spawns *strictly fewer*
///    tasks than eager grain recursion on the same workloads (counted by
///    the same `par_splits` counter on both pools) while matching its
///    throughput (≤ 1.25× its time; typically well under 1×, since not
///    forking into a busy pool is pure savings).
/// 3. **Accounting** — the four-way identity
///    `steal_attempts == steals + aborts + empties + injects` and
///    `parks == unparks` hold on every pool at shutdown, and every
///    split/sequential decision is counted (`par_splits + par_seq > 0`).
pub fn par(small: bool) -> ExpResult {
    use abp_dag::DetRng;
    use abp_telemetry::json;
    use hood::par::prelude::*;
    use hood::{par_sort_unstable, PolicySet, PoolConfig, PoolStats, SplitKind, ThreadPool};
    use std::time::Instant;

    let p = 8;
    let n_sort: usize = if small { 200_000 } else { 2_000_000 };
    let n_reduce: usize = if small { 1_000_000 } else { 8_000_000 };
    let reps: usize = if small { 3 } else { 5 };

    fn median_ms(times: &mut [f64]) -> f64 {
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times[times.len() / 2]
    }

    fn hash(x: u64) -> u64 {
        (x ^ (x >> 7)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    let mut rng = DetRng::new(3);
    let sort_data: Vec<u64> = (0..n_sort).map(|_| rng.below(u64::MAX / 2)).collect();
    let reduce_data: Vec<u64> = (0..n_reduce).map(|_| rng.below(u64::MAX / 2)).collect();
    let mut sorted_expect = sort_data.clone();
    sorted_expect.sort_unstable();
    let reduce_expect = reduce_data
        .iter()
        .map(|&x| hash(x))
        .fold(0u64, u64::wrapping_add);

    let mut pass = true;

    // -- sequential baselines (no pool at all) ---------------------------
    let mut times = Vec::new();
    for _ in 0..reps {
        let mut v = sort_data.clone();
        let t0 = Instant::now();
        v.sort_unstable();
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        pass &= v == sorted_expect;
    }
    let seq_sort_ms = median_ms(&mut times);
    let mut times = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let got = reduce_data
            .iter()
            .map(|&x| hash(x))
            .fold(0u64, u64::wrapping_add);
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        pass &= got == reduce_expect;
    }
    let seq_reduce_ms = median_ms(&mut times);

    // -- one pool per split policy, both workloads on each ---------------
    // Both pools count fork decisions through the same `par_splits`
    // counter, so the adaptive-vs-eager task-count comparison is
    // apples-to-apples.
    struct PolicyRun {
        sort_ms: f64,
        reduce_ms: f64,
        stats: PoolStats,
    }
    let mut measure = |split: SplitKind| -> PolicyRun {
        let pool = ThreadPool::with_config(PoolConfig {
            num_procs: p,
            policies: PolicySet {
                split,
                ..PolicySet::default()
            },
            ..PoolConfig::default()
        });
        // Warm (first-touch wakes, page faults on the clone).
        let mut warm = sort_data.clone();
        pool.install(|| par_sort_unstable(&mut warm));
        let mut times = Vec::new();
        for _ in 0..reps {
            let mut v = sort_data.clone();
            let t0 = Instant::now();
            pool.install(|| par_sort_unstable(&mut v));
            times.push(t0.elapsed().as_secs_f64() * 1e3);
            pass &= v == sorted_expect;
        }
        let sort_ms = median_ms(&mut times);
        let mut times = Vec::new();
        for _ in 0..reps {
            let t0 = Instant::now();
            let got = pool.install(|| {
                reduce_data
                    .par_iter()
                    .map(|&x| hash(x))
                    .reduce(|| 0u64, u64::wrapping_add)
            });
            times.push(t0.elapsed().as_secs_f64() * 1e3);
            pass &= got == reduce_expect;
        }
        let reduce_ms = median_ms(&mut times);
        let report = pool.shutdown();
        PolicyRun {
            sort_ms,
            reduce_ms,
            stats: report.stats,
        }
    };

    let adaptive = measure(SplitKind::Adaptive);
    let eager = measure(SplitKind::EagerGrain { grain: 4_096 });

    // -- claim 3: accounting ---------------------------------------------
    for (name, st) in [("adaptive", &adaptive.stats), ("eager", &eager.stats)] {
        pass &= st.attempts_balance();
        pass &= st.parks_balance();
        pass &= st.par_splits + st.par_seq > 0;
        let _ = name;
    }

    // -- claim 2: task economy at equal-or-better throughput -------------
    let ad_tasks = adaptive.stats.par_splits;
    let eg_tasks = eager.stats.par_splits;
    pass &= ad_tasks < eg_tasks;
    pass &= adaptive.sort_ms <= eager.sort_ms * 1.25;
    pass &= adaptive.reduce_ms <= eager.reduce_ms * 1.25;

    // -- claim 1: speedup, gated on real cores (H2 idiom) ----------------
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let sort_speedup = seq_sort_ms / adaptive.sort_ms;
    let reduce_speedup = seq_reduce_ms / adaptive.reduce_ms;
    let cores_scarce = cores < p;
    if !cores_scarce {
        pass &= sort_speedup >= 3.0;
        pass &= reduce_speedup >= 3.0;
    }

    let mut t = TextTable::new(["workload", "seq ms", "adaptive ms", "eager ms", "speedup"]);
    t.row([
        format!("sort {n_sort}"),
        f2(seq_sort_ms),
        f2(adaptive.sort_ms),
        f2(eager.sort_ms),
        format!("{sort_speedup:.2}x"),
    ]);
    t.row([
        format!("reduce {n_reduce}"),
        f2(seq_reduce_ms),
        f2(adaptive.reduce_ms),
        f2(eager.reduce_ms),
        format!("{reduce_speedup:.2}x"),
    ]);

    // -- machine-readable artifact ---------------------------------------
    let artifact = format!(
        "{{\n  \"bench\": \"par\",\n  \"mode\": \"{}\",\n  \"p\": {},\n  \"cores\": {},\n  \
         \"speedup_gate_active\": {},\n  \
         \"sort\": {{\"n\": {}, \"seq_ms\": {:.3}, \"adaptive_ms\": {:.3}, \"eager_ms\": {:.3}, \
         \"speedup\": {:.3}}},\n  \
         \"reduce\": {{\"n\": {}, \"seq_ms\": {:.3}, \"adaptive_ms\": {:.3}, \"eager_ms\": {:.3}, \
         \"speedup\": {:.3}}},\n  \
         \"adaptive\": {{\"par_splits\": {}, \"par_seq\": {}, \"steals\": {}, \
         \"steal_attempts\": {}, \"parks\": {}, \"unparks\": {}}},\n  \
         \"eager\": {{\"par_splits\": {}, \"par_seq\": {}, \"steals\": {}, \
         \"steal_attempts\": {}, \"parks\": {}, \"unparks\": {}}}\n}}\n",
        if small { "small" } else { "full" },
        p,
        cores,
        !cores_scarce,
        n_sort,
        seq_sort_ms,
        adaptive.sort_ms,
        eager.sort_ms,
        sort_speedup,
        n_reduce,
        seq_reduce_ms,
        adaptive.reduce_ms,
        eager.reduce_ms,
        reduce_speedup,
        adaptive.stats.par_splits,
        adaptive.stats.par_seq,
        adaptive.stats.steals,
        adaptive.stats.steal_attempts,
        adaptive.stats.parks,
        adaptive.stats.unparks,
        eager.stats.par_splits,
        eager.stats.par_seq,
        eager.stats.steals,
        eager.stats.steal_attempts,
        eager.stats.parks,
        eager.stats.unparks,
    );
    pass &= json::parse(&artifact).is_ok();
    let _ = std::fs::create_dir_all("target");
    let wrote = std::fs::write("target/BENCH_par.json", &artifact).is_ok();

    let body = format!(
        "data-parallel layer on a P={p} pool, {cores} core(s); \
         speedup bar (≥ 3.0x){}\n\
         task economy: adaptive {ad_tasks} splits < eager {eg_tasks} splits \
         at ≤ 1.25x eager's time (bar)\n\
         accounting: attempts balance + parks balance on both pools; \
         every split decision counted\n\
         wrote target/BENCH_par.json ({} bytes{})\n\n{}",
        if cores_scarce {
            " waived: fewer cores than workers — speedups reported informationally"
        } else {
            " enforced"
        },
        artifact.len(),
        if wrote { "" } else { ", WRITE FAILED" },
        t.render()
    );
    ExpResult::new("DP1", "Data-parallel layer: adaptive splitting", body, pass)
}

/// DQ1 — the pluggable deque-backend matrix: ABP vs the fence-free
/// multiplicity deque, head to head through the [`abp_deque::TaskDeque`]
/// seam.
///
/// Two parts, one artifact (`target/BENCH_deque.json`, validated with the
/// in-repo JSON parser; a blessed copy is committed at the repo root):
///
/// 1. **Steal-throughput drain matrix** — a deque pre-filled with N
///    entries is drained to empty by 1/2/4 thieves through
///    [`abp_deque::DequeStealer::steal`]; the metric is entries drained
///    per second (median of S runs after a warmup). The fence-free steal
///    fast path replaces ABP's contended `cas` on the shared `age` word
///    with a per-slot claim, so contention spreads instead of
///    serializing: the acceptance bar is **fence-free ≥ ABP at 2 and 4
///    thieves** (one thief is reported, not gated — without contention
///    the protocols cost about the same). Every cell must conserve
///    entries exactly (the guarded steal is exactly-once even on the
///    multiplicity backend); ABP must show zero duplicates, fence-free
///    zero aborts.
/// 2. **Live-pool identity on all four backends** — fork-join work plus
///    external submissions per backend; the five-way identity
///    `attempts == steals + aborts + empties + injects + duplicates`
///    must hold, with the structural zeros pinned per backend:
///    `aborts == 0` where the backend cannot abort (fence-free),
///    `duplicates == 0` where it is exact (ABP, growable, locking).
///    The pool's shutdown asserts the same — this table is the
///    human-readable record.
pub fn deque_backends(small: bool) -> ExpResult {
    use abp_deque::{AbpBackend, DequeOwner, DequeStealer, FenceFreeBackend, Steal, TaskDeque};
    use abp_telemetry::json;
    use hood::{join, Backend, PoolConfig, ThreadPool};
    use std::sync::{Arc, Barrier};
    use std::time::Instant;

    let entries: u64 = if small { 1 << 13 } else { 1 << 15 };
    let samples: usize = if small { 5 } else { 9 };
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    let mut pass = true;

    // -- (1) drain matrix -------------------------------------------------
    struct Cell {
        backend: &'static str,
        thieves: usize,
        meps: f64, // median entries/s, millions
        takes: u64,
        duplicates: u64,
        aborts: u64,
        conserved: bool,
    }

    /// One timed drain: pre-fill, release the thieves together, wait for
    /// all of them to observe `Empty`. Each thief times its own drain
    /// window (barrier release → `Empty`) and the drain's elapsed time is
    /// the max across thieves: on a many-core box that is the contended
    /// wall time, and on a timeslice-starved box it still covers the
    /// thief that did the work instead of crediting the scheduler's wake
    /// order to the deque. Returns (elapsed_s, takes, dups, aborts,
    /// checksum).
    fn drain_once<B: TaskDeque<u64>>(
        backend: &B,
        thieves: usize,
        n: u64,
    ) -> (f64, u64, u64, u64, u64) {
        let (owner, stealer) = backend.new_pair();
        for i in 0..n {
            owner.push_bottom(i).unwrap();
        }
        let barrier = Arc::new(Barrier::new(thieves));
        let handles: Vec<_> = (0..thieves)
            .map(|_| {
                let s = stealer.clone();
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    b.wait();
                    let t0 = Instant::now();
                    let (mut takes, mut dups, mut aborts, mut sum) = (0u64, 0u64, 0u64, 0u64);
                    loop {
                        match s.steal() {
                            Steal::Taken(v) => {
                                takes += 1;
                                sum = sum.wrapping_add(v);
                            }
                            Steal::Duplicate => dups += 1,
                            Steal::Abort => aborts += 1,
                            // `bot` is fixed during the drain, so Empty is
                            // definitive for every backend: all n entries
                            // are out.
                            Steal::Empty => break,
                        }
                    }
                    (t0.elapsed().as_secs_f64(), takes, dups, aborts, sum)
                })
            })
            .collect();
        let (mut elapsed, mut takes, mut dups, mut aborts, mut sum) =
            (0f64, 0u64, 0u64, 0u64, 0u64);
        for h in handles {
            let (e, t, d, a, s) = h.join().unwrap();
            elapsed = elapsed.max(e);
            takes += t;
            dups += d;
            aborts += a;
            sum = sum.wrapping_add(s);
        }
        // The owner must find nothing left behind.
        assert_eq!(owner.pop_bottom(), None);
        (elapsed, takes, dups, aborts, sum)
    }

    fn drain_cell<B: TaskDeque<u64>>(backend: &B, thieves: usize, n: u64, samples: usize) -> Cell {
        let checksum = n * (n - 1) / 2; // sum 0..n, u64-exact for our sizes
        let _ = drain_once(backend, thieves, n); // warmup
        let mut per_run: Vec<f64> = Vec::with_capacity(samples);
        let (mut takes, mut dups, mut aborts) = (0u64, 0u64, 0u64);
        let mut conserved = true;
        for _ in 0..samples {
            let (elapsed, t, d, a, sum) = drain_once(backend, thieves, n);
            per_run.push(n as f64 / elapsed / 1e6);
            conserved &= t == n && sum == checksum;
            takes += t;
            dups += d;
            aborts += a;
        }
        per_run.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cell {
            backend: B::NAME,
            thieves,
            meps: per_run[samples / 2],
            takes,
            duplicates: dups,
            aborts,
            conserved,
        }
    }

    let abp = AbpBackend {
        capacity: entries as usize,
    };
    let ff = FenceFreeBackend {
        capacity: entries as usize,
    };
    let mut cells: Vec<Cell> = Vec::new();
    for thieves in [1usize, 2, 4] {
        cells.push(drain_cell(&abp, thieves, entries, samples));
        cells.push(drain_cell(&ff, thieves, entries, samples));
    }

    let mut t = TextTable::new([
        "backend",
        "thieves",
        "Mdrains/s",
        "takes",
        "dups",
        "aborts",
        "conserved",
    ]);
    let mut cells_json = String::new();
    for c in &cells {
        pass &= c.conserved;
        match c.backend {
            "abp" => pass &= c.duplicates == 0, // exact: no once-guard to lose
            "fence-free" => pass &= c.aborts == 0, // no cas, no lock: nothing to lose
            _ => {}
        }
        t.row([
            c.backend.to_string(),
            c.thieves.to_string(),
            format!("{:.2}", c.meps),
            c.takes.to_string(),
            c.duplicates.to_string(),
            c.aborts.to_string(),
            if c.conserved { "yes" } else { "LOST" }.to_string(),
        ]);
        if !cells_json.is_empty() {
            cells_json.push_str(",\n");
        }
        write!(
            cells_json,
            "    {{\"backend\":\"{}\",\"thieves\":{},\"meps\":{:.3},\"takes\":{},\
             \"duplicates\":{},\"aborts\":{},\"conserved\":{}}}",
            c.backend, c.thieves, c.meps, c.takes, c.duplicates, c.aborts, c.conserved
        )
        .unwrap();
    }

    // The headline gate: under contention the fence-free deque must not
    // be slower than ABP.
    let meps = |name: &str, thieves: usize| {
        cells
            .iter()
            .find(|c| c.backend == name && c.thieves == thieves)
            .map(|c| c.meps)
            .unwrap()
    };
    let ff_ge_abp_2t = meps("fence-free", 2) >= meps("abp", 2);
    let ff_ge_abp_4t = meps("fence-free", 4) >= meps("abp", 4);
    pass &= ff_ge_abp_2t && ff_ge_abp_4t;

    // -- (2) live-pool identity on all four backends ----------------------
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    let backends = [
        Backend::Abp { capacity: 1 << 13 },
        Backend::AbpGrowable {
            initial_capacity: 64,
        },
        Backend::Locking,
        Backend::FenceFree { capacity: 1 << 13 },
    ];
    let mut pt = TextTable::new([
        "backend", "attempts", "steals", "aborts", "empties", "injects", "dups", "identity",
    ]);
    let mut pools_json = String::new();
    for backend in backends {
        let pool =
            ThreadPool::with_config(PoolConfig::default().with_num_procs(4).with_deque(backend));
        pass &= pool.install(|| fib(17)) == 1_597;
        let submitted = 32u64;
        let done = Arc::new(std::sync::atomic::AtomicU64::new(0));
        for _ in 0..submitted {
            let done = Arc::clone(&done);
            pool.spawn(move || {
                done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
        while done.load(std::sync::atomic::Ordering::Relaxed) < submitted {
            std::thread::yield_now();
        }
        // `shutdown` re-asserts the structural zeros internally; this
        // records them.
        let report = pool.shutdown();
        let st = &report.stats;
        let mut ok = st.attempts_balance() && report.backend == backend.name();
        if !backend.can_abort() {
            ok &= st.aborts == 0;
        }
        if backend.exact() {
            ok &= st.duplicates == 0;
        }
        pass &= ok;
        pt.row([
            report.backend.to_string(),
            st.steal_attempts.to_string(),
            st.steals.to_string(),
            st.aborts.to_string(),
            st.empties.to_string(),
            st.injects.to_string(),
            st.duplicates.to_string(),
            if ok { "holds" } else { "BROKEN" }.to_string(),
        ]);
        if !pools_json.is_empty() {
            pools_json.push_str(",\n");
        }
        write!(
            pools_json,
            "    {{\"backend\":\"{}\",\"attempts\":{},\"steals\":{},\"aborts\":{},\
             \"empties\":{},\"injects\":{},\"duplicates\":{},\"identity\":{}}}",
            report.backend,
            st.steal_attempts,
            st.steals,
            st.aborts,
            st.empties,
            st.injects,
            st.duplicates,
            ok
        )
        .unwrap();
    }

    // -- machine-readable artifact ---------------------------------------
    let artifact = format!(
        "{{\n  \"bench\": \"deque\",\n  \"mode\": \"{}\",\n  \"cores\": {},\n  \
         \"drain\": {{\"entries\": {}, \"samples\": {}, \"cells\": [\n{}\n  ]}},\n  \
         \"gates\": {{\"ff_ge_abp_2t\": {}, \"ff_ge_abp_4t\": {}}},\n  \
         \"pools\": [\n{}\n  ]\n}}\n",
        if small { "small" } else { "full" },
        cores,
        entries,
        samples,
        cells_json,
        ff_ge_abp_2t,
        ff_ge_abp_4t,
        pools_json,
    );
    pass &= json::parse(&artifact).is_ok();
    let _ = std::fs::create_dir_all("target");
    let wrote = std::fs::write("target/BENCH_deque.json", &artifact).is_ok();

    let body = format!(
        "drain matrix: {entries} entries, median of {samples} runs per cell, {cores} core(s)\n\
         gate: fence-free ≥ ABP at 2 thieves ({}) and 4 thieves ({})\n\
         wrote target/BENCH_deque.json ({} bytes{})\n\n{}\n\
         live pools (P=4, fib(17) + 32 submissions), five-way identity per backend:\n{}",
        if ff_ge_abp_2t { "yes" } else { "NO" },
        if ff_ge_abp_4t { "yes" } else { "NO" },
        artifact.len(),
        if wrote { "" } else { ", WRITE FAILED" },
        t.render(),
        pt.render()
    );
    ExpResult::new(
        "DQ1",
        "Deque backends: fence-free multiplicity vs ABP",
        body,
        pass,
    )
}

/// TH1 — theory validation: machine-check the rooted-tree steal bound
/// and the work-stealing cache bound against the exact simulator.
///
/// (a) Tree topologies from `abp_dag::tree` run through the stepped
/// work stealer under every victim-selection policy and several P; each
/// cell asserts the Leiserson–Schardl–Suksompong bound
/// `steals ≤ Σ_{i=1}^{min(P−1,h)} kⁱ·C(h,i)` applied to the binarized
/// spawn tree (branching 2, height = `spawn_height()`), capped by the
/// tree's edge count, and records the observed/bound gap ratio.
///
/// (b) Fork-join workloads run with the per-process LRU cache model;
/// each parallel run is checked against the serial baseline:
/// `Q_P − Q₁ ≤ κ·M·deviations` (Gu–Napier–Sun / Acar–Blelloch–Blumofe),
/// with the structural consequence that `P = 1` incurs no deviations.
pub fn theory(small: bool) -> ExpResult {
    use abp_dag::tree::{self, RootedTree};
    use abp_sim::{CacheBoundCheck, CacheConfig, PolicySet, StealBoundCheck, VictimKind};
    use abp_telemetry::json;

    let mut pass = true;

    // -- (a) steal-bound matrix: topology × victim policy × P ------------
    let trees: Vec<(&str, RootedTree)> = if small {
        vec![
            ("spine(40)", tree::spine(40)),
            ("kary(2,5)", tree::full_kary(2, 5)),
            ("kary(3,4)", tree::full_kary(3, 4)),
            ("random(60)", tree::random_attachment(0xA77, 60)),
            ("caterpillar(10,3)", tree::caterpillar(10, 3)),
        ]
    } else {
        vec![
            ("spine(96)", tree::spine(96)),
            ("kary(2,7)", tree::full_kary(2, 7)),
            ("kary(3,5)", tree::full_kary(3, 5)),
            ("random(160)", tree::random_attachment(0xA77, 160)),
            ("caterpillar(24,5)", tree::caterpillar(24, 5)),
        ]
    };
    let victims: Vec<(&str, VictimKind)> = vec![
        ("uniform", VictimKind::Uniform),
        ("round-robin", VictimKind::RoundRobin),
        ("last-victim", VictimKind::LastVictim),
    ];
    let ps_list: Vec<usize> = if small { vec![2, 4] } else { vec![2, 4, 8] };
    let seeds: Vec<u64> = if small { vec![11] } else { vec![11, 12] };

    let mut st = TextTable::new([
        "topology", "policy", "P", "h2", "edges", "steals", "bound", "gap", "holds",
    ]);
    let mut steal_json = String::new();
    let mut max_steal_gap = 0.0f64;
    for (tname, rt) in &trees {
        rt.check_invariants();
        let dag = rt.to_dag(2);
        let h2 = rt.spawn_height();
        let edges = rt.num_edges() as u64;
        for (vname, vk) in &victims {
            for &p in &ps_list {
                // Max over seeds: the bound is worst-case, so every seed
                // must hold; the table reports the worst observation.
                let mut worst = StealBoundCheck::rooted_tree(0, 2, h2, edges, p);
                for &seed in &seeds {
                    let mut k = DedicatedKernel::new(p);
                    let cfg = ws_defaults(seed).with_policies(PolicySet::paper().with_victim(*vk));
                    let r = run_ws(&dag, p, &mut k, cfg);
                    pass &= r.completed && r.steal_accounting_balanced();
                    let check = StealBoundCheck::rooted_tree(r.successful_steals, 2, h2, edges, p);
                    pass &= check.holds();
                    if check.observed >= worst.observed {
                        worst = check;
                    }
                }
                max_steal_gap = max_steal_gap.max(worst.gap_ratio());
                st.row([
                    tname.to_string(),
                    vname.to_string(),
                    p.to_string(),
                    h2.to_string(),
                    edges.to_string(),
                    worst.observed.to_string(),
                    format!("{:.0}", worst.bound),
                    f3(worst.gap_ratio()),
                    if worst.holds() { "yes" } else { "NO" }.to_string(),
                ]);
                if !steal_json.is_empty() {
                    steal_json.push_str(",\n");
                }
                write!(
                    steal_json,
                    "    {{\"topology\":\"{}\",\"policy\":\"{}\",\"p\":{},\
                     \"spawn_height\":{},\"edges\":{},\"steals\":{},\"bound\":{:.1},\
                     \"gap\":{:.6},\"holds\":{}}}",
                    tname,
                    vname,
                    p,
                    h2,
                    edges,
                    worst.observed,
                    worst.bound,
                    worst.gap_ratio(),
                    worst.holds(),
                )
                .unwrap();
            }
        }
    }

    // -- (b) cache-bound matrix: workload × P vs the serial baseline -----
    let cache_cfg = CacheConfig::default();
    let cache_dags: Vec<(&str, Dag)> = if small {
        vec![
            ("fork-join(5,2)", gen::fork_join_tree(5, 2)),
            ("kary(2,5)-tree", tree::full_kary(2, 5).to_dag(3)),
            ("caterpillar(10,3)", tree::caterpillar(10, 3).to_dag(3)),
        ]
    } else {
        vec![
            ("fork-join(8,2)", gen::fork_join_tree(8, 2)),
            ("kary(2,7)-tree", tree::full_kary(2, 7).to_dag(3)),
            ("caterpillar(24,5)", tree::caterpillar(24, 5).to_dag(3)),
        ]
    };
    let mut ct = TextTable::new([
        "workload", "P", "Q1", "QP", "extra", "devs", "bound", "gap", "holds",
    ]);
    let mut cache_json = String::new();
    let mut max_cache_gap = 0.0f64;
    // -- (c) rides along with (b): the LastEnabler victim policy targets
    // the processor that executed a node's designated parent (fed by the
    // cache model's deviation signal). The bound is policy-independent
    // and must still hold; whether the hint actually *tightens* the
    // measured gap ratios is reported, not gated.
    let mut lt = TextTable::new([
        "workload",
        "P",
        "devs uni",
        "devs enab",
        "gap uni",
        "gap enab",
        "tighter",
    ]);
    let mut enab_json = String::new();
    let (mut tightened, mut enab_cells) = (0u32, 0u32);
    for (wname, dag) in &cache_dags {
        let mut k = DedicatedKernel::new(1);
        let cfg = ws_defaults(7).with_cache(cache_cfg);
        let serial = run_ws(dag, 1, &mut k, cfg);
        pass &= serial.completed;
        let q1 = serial.cache.as_ref().expect("cache model was enabled");
        // With one process nothing can deviate, so the serial run *is*
        // the baseline the bound compares against.
        pass &= q1.deviations == 0;
        for &p in &ps_list {
            let mut k = DedicatedKernel::new(p);
            let cfg = ws_defaults(7).with_cache(cache_cfg);
            let r = run_ws(dag, p, &mut k, cfg);
            pass &= r.completed;
            let qp = r.cache.as_ref().expect("cache model was enabled");
            let check = CacheBoundCheck {
                serial_misses: q1.misses,
                parallel_misses: qp.misses,
                deviations: qp.deviations,
                cache_lines: qp.lines,
            };
            pass &= check.holds();
            max_cache_gap = max_cache_gap.max(check.gap_ratio());
            ct.row([
                wname.to_string(),
                p.to_string(),
                q1.misses.to_string(),
                qp.misses.to_string(),
                check.extra_misses().to_string(),
                qp.deviations.to_string(),
                check.bound().to_string(),
                f3(check.gap_ratio()),
                if check.holds() { "yes" } else { "NO" }.to_string(),
            ]);
            if !cache_json.is_empty() {
                cache_json.push_str(",\n");
            }
            write!(
                cache_json,
                "    {{\"workload\":\"{}\",\"p\":{},\"q1\":{},\"qp\":{},\"extra\":{},\
                 \"deviations\":{},\"bound\":{},\"gap\":{:.6},\"holds\":{}}}",
                wname,
                p,
                q1.misses,
                qp.misses,
                check.extra_misses(),
                qp.deviations,
                check.bound(),
                check.gap_ratio(),
                check.holds(),
            )
            .unwrap();
            // Same cell, LastEnabler victim policy (serial baseline is
            // shared: with P = 1 no steal ever happens, so the victim
            // policy cannot matter there).
            let mut k = DedicatedKernel::new(p);
            let cfg = ws_defaults(7)
                .with_cache(cache_cfg)
                .with_policies(PolicySet::paper().with_victim(VictimKind::LastEnabler));
            let re = run_ws(dag, p, &mut k, cfg);
            pass &= re.completed;
            let qe = re.cache.as_ref().expect("cache model was enabled");
            let check_e = CacheBoundCheck {
                serial_misses: q1.misses,
                parallel_misses: qe.misses,
                deviations: qe.deviations,
                cache_lines: qe.lines,
            };
            pass &= check_e.holds();
            max_cache_gap = max_cache_gap.max(check_e.gap_ratio());
            let tighter = check_e.gap_ratio() < check.gap_ratio();
            tightened += tighter as u32;
            enab_cells += 1;
            lt.row([
                wname.to_string(),
                p.to_string(),
                qp.deviations.to_string(),
                qe.deviations.to_string(),
                f3(check.gap_ratio()),
                f3(check_e.gap_ratio()),
                if tighter { "yes" } else { "no" }.to_string(),
            ]);
            if !enab_json.is_empty() {
                enab_json.push_str(",\n");
            }
            write!(
                enab_json,
                "    {{\"workload\":\"{}\",\"p\":{},\"deviations\":{},\"gap\":{:.6},\
                 \"gap_uniform\":{:.6},\"tighter\":{},\"holds\":{}}}",
                wname,
                p,
                qe.deviations,
                check_e.gap_ratio(),
                check.gap_ratio(),
                tighter,
                check_e.holds(),
            )
            .unwrap();
        }
    }

    // -- machine-readable artifact ---------------------------------------
    let artifact = format!(
        "{{\n  \"bench\": \"theory\",\n  \"mode\": \"{}\",\n  \
         \"steal\": {{\"branching\": 2, \"seeds\": {}, \"cells\": [\n{}\n  ]}},\n  \
         \"cache\": {{\"kappa\": {}, \"lines\": {}, \"block\": {}, \"cells\": [\n{}\n  ]}},\n  \
         \"last_enabler\": {{\"tightened\": {}, \"cells_total\": {}, \"cells\": [\n{}\n  ]}},\n  \
         \"gates\": {{\"max_steal_gap\": {:.6}, \"max_cache_gap\": {:.6}, \
         \"all_hold\": {}}}\n}}\n",
        if small { "small" } else { "full" },
        seeds.len(),
        steal_json,
        abp_sim::CACHE_KAPPA,
        cache_cfg.lines,
        cache_cfg.block,
        cache_json,
        tightened,
        enab_cells,
        enab_json,
        max_steal_gap,
        max_cache_gap,
        pass,
    );
    pass &= json::parse(&artifact).is_ok();
    let _ = std::fs::create_dir_all("target");
    let wrote = std::fs::write("target/BENCH_theory.json", &artifact).is_ok();

    let body = format!(
        "steal bound (binarized spawn tree, k=2, capped by edges), worst seed per cell:\n{}\n\
         max observed/bound gap: {}\n\n\
         cache bound Q_P − Q₁ ≤ κ·M·deviations (κ={}, M={} lines, block={}):\n{}\n\
         max extra/bound gap: {}\n\n\
         last-enabler victim policy (deviation-driven hint) vs uniform — the bound must\n\
         still hold; gap tightening is reported, not gated: {tightened}/{enab_cells} cells tighter\n{}\n\
         wrote target/BENCH_theory.json ({} bytes{})\n",
        st.render(),
        f3(max_steal_gap),
        abp_sim::CACHE_KAPPA,
        cache_cfg.lines,
        cache_cfg.block,
        ct.render(),
        f3(max_cache_gap),
        lt.render(),
        artifact.len(),
        if wrote { "" } else { ", WRITE FAILED" },
    );
    ExpResult::new(
        "TH1",
        "Theory validation: steal bound and cache bound vs the simulator",
        body,
        pass,
    )
}

/// FD1 — federation: the K-pool topology layer over both surfaces.
///
/// Four gates, one artifact (`target/BENCH_federation.json`, validated
/// with the in-repo JSON parser; a blessed copy is committed at the repo
/// root):
///
/// 1. **Scaling** (simulator) — with the pool size fixed at 2 workers,
///    growing the topology K ∈ {1, 2, 4} (P = 2K) under a dedicated
///    kernel must cut rounds monotonically, ≥ 2× in total at K = 4. The
///    simulator's multi-core model carries the speedup claim — the host
///    may have any number of cores (the DP1 `cores_scarce` convention,
///    taken to its conclusion).
/// 2. **Cold submit** (real pool) — a federated K = 4 pool routes an
///    external submission to one pool's injector and wakes through that
///    pool's sleep subsystem alone; the in-run median cold-submit
///    latency must stay within 4× of a flat pool measured back-to-back
///    under the same metronome (the ID1 envelope, taken relative so the
///    gate is machine-independent; absolute numbers are reported).
/// 3. **Remote fraction** — 8 affinity-spread clients drive `hood::par`
///    fork-join work through K = 4 topologies; hierarchical scanning
///    must cut the remote-steal fraction ≥ 5× against the flat-scan
///    control arm (same pool labels, topology-blind scans), on the real
///    pool's hit fraction and mirrored on the simulator's attempt
///    fraction (the scan policy's own property).
/// 4. **Accounting** — the extended identity
///    `attempts == steals + aborts + empties + injects` holds on every
///    arm with `steals = local + remote` riding outside it, per-pool
///    stats sum to the aggregate, and K = 1 carries the structural zero
///    on both surfaces.
pub fn federation(small: bool) -> ExpResult {
    use abp_telemetry::json;
    use hood::{
        map_reduce, IdleKind, PolicySet, PoolConfig, PoolReport, PoolStats, SleepKind, SleepStats,
        ThreadPool,
    };
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let mut pass = true;

    // -- gate 1: sim throughput scales with K at fixed pool size ---------
    let dag = if small {
        gen::fork_join_tree(8, 2)
    } else {
        gen::fork_join_tree(10, 2)
    };
    let mut scale_t = TextTable::new(["K", "P", "rounds", "wall", "remote/attempts", "speedup"]);
    let mut scale_json = String::new();
    let mut rounds_by_k = Vec::new();
    for k_pools in [1usize, 2, 4] {
        let p = 2 * k_pools;
        let mut k = DedicatedKernel::new(p);
        let cfg = ws_defaults(5).with_pools(k_pools);
        let r = run_ws(&dag, p, &mut k, cfg);
        pass &= r.completed && r.steal_accounting_balanced() && r.locality_consistent();
        if k_pools == 1 {
            pass &= r.remote_attempts == 0; // structural zero (gate 4)
        }
        rounds_by_k.push(r.rounds);
        let speedup = rounds_by_k[0] as f64 / r.rounds as f64;
        scale_t.row([
            k_pools.to_string(),
            p.to_string(),
            r.rounds.to_string(),
            r.wall_steps.to_string(),
            format!("{}/{}", r.remote_attempts, r.steal_attempts),
            f2(speedup),
        ]);
        if !scale_json.is_empty() {
            scale_json.push_str(",\n");
        }
        write!(
            scale_json,
            "    {{\"pools\":{},\"p\":{},\"rounds\":{},\"wall_steps\":{},\
             \"remote_attempts\":{},\"attempts\":{},\"remote_steals\":{},\"speedup\":{:.3}}}",
            k_pools,
            p,
            r.rounds,
            r.wall_steps,
            r.remote_attempts,
            r.steal_attempts,
            r.remote_steals,
            speedup,
        )
        .unwrap();
    }
    let scale_ok = rounds_by_k.windows(2).all(|w| w[1] < w[0])
        && rounds_by_k[0] as f64 / rounds_by_k[2] as f64 >= 2.0;
    pass &= scale_ok;

    // -- gate 2: federated cold submit stays within the flat envelope ----
    // The ID1 harness (metronome + in-job stamp), parameterized by the
    // pool count; one flat and one K = 4 run back-to-back on the same
    // platform state.
    fn wait_parked(pool: &ThreadPool, p: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if pool.sleeping_workers() == p {
                return true;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        pool.sleeping_workers() == p
    }
    fn cold_submit(pools: usize, p: usize, samples: usize) -> (Vec<f64>, SleepStats, PoolReport) {
        let pool = ThreadPool::with_config(
            PoolConfig::default()
                .with_num_procs(p)
                .with_pools(pools)
                .with_policies(
                    PolicySet::paper().with_idle(IdleKind::ParkUntilWake { threshold: 4 }),
                )
                .with_sleep(SleepKind::Eventcount),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop_c = Arc::clone(&stop);
        let metronome = std::thread::spawn(move || {
            while !stop_c.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_micros(25));
            }
        });
        let mut lats = Vec::with_capacity(samples);
        for _ in 0..samples {
            let _ = wait_parked(&pool, p, Duration::from_millis(200));
            let stamp = Arc::new(AtomicU64::new(0));
            let s = Arc::clone(&stamp);
            let t0 = Instant::now();
            pool.spawn(move || {
                s.store(t0.elapsed().as_nanos().max(1) as u64, Ordering::Release);
            });
            while stamp.load(Ordering::Acquire) == 0 {
                std::thread::sleep(Duration::from_micros(20));
            }
            lats.push(stamp.load(Ordering::Acquire) as f64);
        }
        stop.store(true, Ordering::Relaxed);
        metronome.join().unwrap();
        let sleep = pool.sleep_stats();
        let report = pool.shutdown();
        (lats, sleep, report)
    }
    fn quantile(sorted: &[f64], q: f64) -> f64 {
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    }
    let p = 8;
    let samples: usize = if small { 21 } else { 61 };
    let _ = cold_submit(1, p, 3); // warm thread-spawn + first park
    let (mut flat_lat, _, flat_cold) = cold_submit(1, p, samples);
    let (mut fed_lat, fed_sleep, fed_cold) = cold_submit(4, p, samples);
    flat_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    fed_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let flat_med = quantile(&flat_lat, 0.5);
    let fed_med = quantile(&fed_lat, 0.5);
    let cold_ratio = fed_med / flat_med;
    pass &= cold_ratio <= 4.0;
    pass &= fed_sleep.timed_out_parks == 0;
    // gate 4 on these arms: identity + structural zero / sub-count.
    pass &= flat_cold.stats.attempts_balance() && flat_cold.stats.remote_attempts == 0;
    pass &= fed_cold.stats.attempts_balance() && fed_cold.stats.locality_consistent();
    pass &= flat_cold.pools == 1 && fed_cold.pools == 4;

    // -- gate 3: remote-steal fraction, hierarchical vs flat-scan --------
    // Every pool gets its own clients (affinity-spread), so local work
    // exists everywhere and cross-pool steals are a choice of the scan
    // policy, not the only conduit for work.
    fn serve_par(flat_scan: bool, p: usize, pools: usize, tasks: usize) -> PoolReport {
        let pool = Arc::new(ThreadPool::with_config(
            PoolConfig::default()
                .with_num_procs(p)
                .with_pools(pools)
                .with_flat_scan(flat_scan),
        ));
        let data: Arc<Vec<u64>> = Arc::new((0..4096).collect());
        let expect: u64 = data.iter().sum();
        let clients: Vec<_> = (0..p)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let data = Arc::clone(&data);
                std::thread::spawn(move || {
                    for _ in 0..tasks {
                        let got =
                            pool.install(|| map_reduce(&data, 64, 0u64, &|&x| x, &|a, b| a + b));
                        assert_eq!(got, expect);
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        Arc::try_unwrap(pool)
            .unwrap_or_else(|_| panic!("all clones joined"))
            .shutdown()
    }
    let tasks = if small { 12 } else { 40 };
    let hier = serve_par(false, p, 4, tasks);
    let flat_arm = serve_par(true, p, 4, tasks);
    // Gate on the *attempt* fraction — the scan policy's own property.
    // The hit fraction depends on whether victims happened to hold work
    // when scanned (on a single-core host, deques are usually empty by
    // the time another worker runs), so it is reported, not gated.
    let hier_frac = hier.stats.remote_attempt_fraction();
    let flat_frac = flat_arm.stats.remote_attempt_fraction();
    let frac_ok = flat_arm.stats.steal_attempts > 0
        && hier.stats.steal_attempts > 0
        && flat_frac >= 5.0 * hier_frac
        && flat_frac > 0.0;
    pass &= frac_ok;
    // gate 4 on these arms: identity, locality sub-count, per-pool sums.
    for rep in [&hier, &flat_arm] {
        pass &= rep.stats.attempts_balance() && rep.stats.locality_consistent();
        pass &= rep.pools == 4 && rep.per_pool.len() == 4;
        let sum = |f: fn(&PoolStats) -> u64| rep.per_pool.iter().map(f).sum::<u64>();
        pass &= sum(|s| s.steals) == rep.stats.steals
            && sum(|s| s.steal_attempts) == rep.stats.steal_attempts
            && sum(|s| s.remote_steals) == rep.stats.remote_steals
            && sum(|s| s.jobs) == rep.stats.jobs;
    }
    // Sim mirror on the attempt fraction (the scan policy's property).
    let mirror_dag = gen::fib(if small { 13 } else { 15 }, 3);
    let run_mirror = |flat: bool| {
        let mut k = DedicatedKernel::new(8);
        let cfg = ws_defaults(5).with_pools(4).with_flat_scan(flat);
        run_ws(&mirror_dag, 8, &mut k, cfg)
    };
    let sim_hier = run_mirror(false);
    let sim_flat = run_mirror(true);
    pass &= sim_hier.completed && sim_flat.completed;
    let sim_ok = sim_flat.remote_attempt_fraction() >= 5.0 * sim_hier.remote_attempt_fraction();
    pass &= sim_ok;

    let mut rt = TextTable::new([
        "arm",
        "attempts",
        "remote att",
        "att frac",
        "steals",
        "remote hits",
        "injects",
    ]);
    for (name, rep) in [("hierarchical", &hier), ("flat-scan", &flat_arm)] {
        rt.row([
            name.to_string(),
            rep.stats.steal_attempts.to_string(),
            rep.stats.remote_attempts.to_string(),
            f3(rep.stats.remote_attempt_fraction()),
            rep.stats.steals.to_string(),
            rep.stats.remote_steals.to_string(),
            rep.stats.injects.to_string(),
        ]);
    }

    // -- machine-readable artifact ---------------------------------------
    let artifact = format!(
        "{{\n  \"bench\": \"federation\",\n  \"mode\": \"{}\",\n  \
         \"sim_scaling\": {{\"pool_size\": 2, \"cells\": [\n{}\n  ]}},\n  \
         \"cold_submit\": {{\"p\": {}, \"samples\": {}, \"flat_p50_ns\": {:.1}, \
         \"federated_p50_ns\": {:.1}, \"ratio\": {:.4}, \"timed_out_parks\": {}}},\n  \
         \"remote_fraction\": {{\"p\": {}, \"pools\": 4, \
         \"hier\": {{\"attempts\": {}, \"remote_attempts\": {}, \"attempt_fraction\": {:.6}, \
         \"steals\": {}, \"remote_steals\": {}}}, \
         \"flat_scan\": {{\"attempts\": {}, \"remote_attempts\": {}, \"attempt_fraction\": {:.6}, \
         \"steals\": {}, \"remote_steals\": {}}}, \
         \"sim_hier_attempt_fraction\": {:.6}, \"sim_flat_attempt_fraction\": {:.6}}},\n  \
         \"identity\": {{\"flat_remote_attempts\": {}, \"federated_balanced\": {}}},\n  \
         \"gates\": {{\"scaling\": {}, \"cold_submit\": {}, \"remote_fraction\": {}, \
         \"sim_mirror\": {}, \"all\": {}}}\n}}\n",
        if small { "small" } else { "full" },
        scale_json,
        p,
        samples,
        flat_med,
        fed_med,
        cold_ratio,
        fed_sleep.timed_out_parks,
        p,
        hier.stats.steal_attempts,
        hier.stats.remote_attempts,
        hier_frac,
        hier.stats.steals,
        hier.stats.remote_steals,
        flat_arm.stats.steal_attempts,
        flat_arm.stats.remote_attempts,
        flat_frac,
        flat_arm.stats.steals,
        flat_arm.stats.remote_steals,
        sim_hier.remote_attempt_fraction(),
        sim_flat.remote_attempt_fraction(),
        flat_cold.stats.remote_attempts,
        fed_cold.stats.attempts_balance(),
        scale_ok,
        cold_ratio <= 4.0,
        frac_ok,
        sim_ok,
        pass,
    );
    pass &= json::parse(&artifact).is_ok();
    let _ = std::fs::create_dir_all("target");
    let wrote = std::fs::write("target/BENCH_federation.json", &artifact).is_ok();

    let body = format!(
        "sim scaling, fork-join dag at fixed pool size 2 (dedicated kernel):\n{}\n\
         bar: rounds strictly decrease with K and K=4 is ≥ 2× K=1 — {}\n\n\
         cold submit to a fully parked P={p} pool ({samples} samples/arm):\n\
         flat p50 {flat_med:.0} ns vs federated(K=4) p50 {fed_med:.0} ns \
         (ratio {cold_ratio:.2}; bar ≤ 4, federated timed-out parks = {})\n\n\
         remote-attempt fraction, {p} clients × {tasks} map_reduce tasks, K=4:\n{}\n\
         bar: flat-scan attempt fraction ≥ 5× hierarchical — flat {flat_frac:.3} vs \
         hier {hier_frac:.3} ({})\n\
         sim mirror (attempt fraction): flat {:.3} vs hier {:.3} ({})\n\
         identity: K=1 remote attempts = {} (structural zero); federated arms balanced\n\
         wrote target/BENCH_federation.json ({} bytes{})",
        scale_t.render(),
        if scale_ok { "ok" } else { "FAIL" },
        fed_sleep.timed_out_parks,
        rt.render(),
        if frac_ok { "ok" } else { "FAIL" },
        sim_flat.remote_attempt_fraction(),
        sim_hier.remote_attempt_fraction(),
        if sim_ok { "ok" } else { "FAIL" },
        flat_cold.stats.remote_attempts,
        artifact.len(),
        if wrote { "" } else { ", WRITE FAILED" },
    );
    ExpResult::new(
        "FD1",
        "Federation: K-pool topology, hierarchical stealing, affinity routing",
        body,
        pass,
    )
}

/// SB1 — batched stealing end to end: `steal_batch` drain throughput
/// against the single-steal baseline on every deque backend, federated
/// migration amortization in the stepped simulator, and the cold-submit
/// envelope with batching switched on.
///
/// Gates:
/// 1. ABP and growable `steal_batch` drains are ≥ 1.05× their
///    single-steal baselines at 2 and 4 thieves, and the fence-free
///    drain is ≥ parity (every cell conserves tasks exactly). The
///    bars are modest by design: the re-validated claim chain
///    (INV-SB-REVAL — the owner's keep-path pops can invalidate a
///    grab-start `bot` mid-chain, so each claim re-runs the fence +
///    `bot` reload preamble) pays the `thief_fence` per *claim*, like
///    single steals, so the drain-level win is the amortized `age`
///    observation (each claim's CAS doubles as the next one's `age`
///    load) plus the allocation-free reused buffer — ≥ 1.05× demands
///    that win is real without claiming the old fence elision, which
///    was measured at ≥ 1.5× before the chain was found unsound. The
///    fence-free bar is parity: its single steal has no fence to
///    amortize — the per-slot claim CAS is the cost floor either way.
///    The dominant batching win is gate 2's round-trip amortization
///    at the runtime layer (scan, wake, migration), which the chain
///    fix does not touch;
/// 2. in the K = 4 simulator, remote round trips per migrated task
///    (attempts minus batch free-riders, over migrated tasks —
///    [`RunReport::remote_trips_per_migrated_task`]) drop ≥ 2× when
///    `BatchKind::Half` replaces `Single` (averaged over seeds, with
///    identity + locality + batch invariants per run, and the
///    batched arm actually batches);
/// 3. cold submit to a fully parked batched federation stays inside
///    the ID1 envelope (p50 ratio ≤ 4 vs the flat single-steal pool);
/// 4. a live batched churn pool holds the five-way identity and the
///    batch sub-count invariant, while the single-steal arm keeps the
///    structural zeros.
pub fn steal_batch(small: bool) -> ExpResult {
    use abp_deque::{
        AbpBackend, DequeOwner, DequeStealer, FenceFreeBackend, GrowableBackend, LockingBackend,
        Steal, TaskDeque,
    };
    use abp_telemetry::json;
    use hood::{
        join, BatchKind, IdleKind, PolicySet, PoolConfig, PoolReport, SleepKind, ThreadPool,
    };
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
    use std::sync::{Arc, Barrier};
    use std::time::{Duration, Instant};

    let entries: u64 = if small { 1 << 13 } else { 1 << 15 };
    // A busy few-core host can slow a whole arm for tens of ms at a
    // time; enough samples per cell keep the median out of those dips.
    let samples: usize = if small { 11 } else { 21 };
    let batch_cap: usize = 16;
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let mut pass = true;

    // -- (1) drain matrix: single popTop vs steal_batch, per backend -----
    struct Cell {
        backend: &'static str,
        thieves: usize,
        batched: bool,
        meps: f64,
        takes: u64,
        duplicates: u64,
        multi_grabs: u64,
        conserved: bool,
    }

    /// One timed drain (same harness as DQ1: pre-fill, release thieves
    /// together, elapsed = max per-thief window). `batch` switches the
    /// thief loop from `steal()` to `steal_batch(cap)`. Returns
    /// (elapsed_s, takes, dups, multi_task_grabs, checksum).
    fn drain_once<B: TaskDeque<u64>>(
        backend: &B,
        thieves: usize,
        n: u64,
        batch: Option<usize>,
    ) -> (f64, u64, u64, u64, u64) {
        let (owner, stealer) = backend.new_pair();
        for i in 0..n {
            owner.push_bottom(i).unwrap();
        }
        let barrier = Arc::new(Barrier::new(thieves));
        let handles: Vec<_> = (0..thieves)
            .map(|_| {
                let s = stealer.clone();
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    b.wait();
                    let t0 = Instant::now();
                    let (mut takes, mut dups, mut multi, mut sum) = (0u64, 0u64, 0u64, 0u64);
                    match batch {
                        Some(cap) => {
                            // One reused buffer: the steady state is
                            // allocation-free (`steal_batch_into`).
                            let mut buf = abp_deque::StolenBatch::empty();
                            loop {
                                s.steal_batch_into(cap, &mut buf);
                                dups += buf.duplicates;
                                if buf.tasks.len() >= 2 {
                                    multi += 1;
                                }
                                if buf.tasks.is_empty() {
                                    // Aborted or duplicate-only grabs
                                    // retry; with `bot` fixed during the
                                    // drain, an Empty batch is definitive.
                                    if buf.duplicates == 0 && !buf.aborted {
                                        break;
                                    }
                                    continue;
                                }
                                for &v in &buf.tasks {
                                    takes += 1;
                                    sum = sum.wrapping_add(v);
                                }
                            }
                        }
                        None => loop {
                            match s.steal() {
                                Steal::Taken(v) => {
                                    takes += 1;
                                    sum = sum.wrapping_add(v);
                                }
                                Steal::Duplicate => dups += 1,
                                Steal::Abort => {}
                                Steal::Empty => break,
                            }
                        },
                    }
                    (t0.elapsed().as_secs_f64(), takes, dups, multi, sum)
                })
            })
            .collect();
        let (mut elapsed, mut takes, mut dups, mut multi, mut sum) = (0f64, 0u64, 0u64, 0u64, 0u64);
        for h in handles {
            let (e, t, d, m, s) = h.join().unwrap();
            elapsed = elapsed.max(e);
            takes += t;
            dups += d;
            multi += m;
            sum = sum.wrapping_add(s);
        }
        assert_eq!(owner.pop_bottom(), None);
        (elapsed, takes, dups, multi, sum)
    }

    fn median(v: &mut [f64]) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    }

    /// The single and batched cells for one (backend, thieves) point,
    /// sampled *pairwise*: each sample runs the single drain and the
    /// batched drain back-to-back, and the gated speedup is the median
    /// of per-sample ratios. A shared-host slowdown spanning one pair
    /// hits both arms and cancels; sampling the arms in separate blocks
    /// (the obvious structure) lets the same slowdown bias a whole arm
    /// and made the gate flaky.
    fn drain_pair<B: TaskDeque<u64>>(
        backend: &B,
        thieves: usize,
        n: u64,
        samples: usize,
        cap: usize,
    ) -> (Cell, Cell, f64) {
        let checksum = n * (n - 1) / 2;
        let _ = drain_once(backend, thieves, n, None); // warmup
        let _ = drain_once(backend, thieves, n, Some(cap));
        let mut runs = [Vec::with_capacity(samples), Vec::with_capacity(samples)];
        let mut ratios = Vec::with_capacity(samples);
        let mut tot = [(0u64, 0u64, 0u64, true); 2];
        for _ in 0..samples {
            let mut pair = [0.0f64; 2];
            for (i, batch) in [None, Some(cap)].into_iter().enumerate() {
                let (elapsed, t, d, m, sum) = drain_once(backend, thieves, n, batch);
                pair[i] = n as f64 / elapsed / 1e6;
                runs[i].push(pair[i]);
                tot[i].0 += t;
                tot[i].1 += d;
                tot[i].2 += m;
                tot[i].3 &= t == n && sum == checksum;
            }
            ratios.push(pair[1] / pair[0]);
        }
        let cell = |i: usize, runs: &mut [f64], tot: (u64, u64, u64, bool)| Cell {
            backend: B::NAME,
            thieves,
            batched: i == 1,
            meps: median(runs),
            takes: tot.0,
            duplicates: tot.1,
            multi_grabs: tot.2,
            conserved: tot.3,
        };
        let [mut single_runs, mut batch_runs] = runs;
        (
            cell(0, &mut single_runs, tot[0]),
            cell(1, &mut batch_runs, tot[1]),
            median(&mut ratios),
        )
    }

    let abp = AbpBackend {
        capacity: entries as usize,
    };
    let growable = GrowableBackend {
        initial_capacity: 64,
    };
    let locking = LockingBackend;
    let ff = FenceFreeBackend {
        capacity: entries as usize,
    };
    let mut cells: Vec<Cell> = Vec::new();
    let mut speedups: Vec<(&'static str, usize, f64)> = Vec::new();
    for thieves in [1usize, 2, 4] {
        let (mut singles, mut batches) = (Vec::new(), Vec::new());
        let mut take = |(s, b, r): (Cell, Cell, f64)| {
            speedups.push((s.backend, thieves, r));
            singles.push(s);
            batches.push(b);
        };
        take(drain_pair(&abp, thieves, entries, samples, batch_cap));
        take(drain_pair(&growable, thieves, entries, samples, batch_cap));
        take(drain_pair(&locking, thieves, entries, samples, batch_cap));
        take(drain_pair(&ff, thieves, entries, samples, batch_cap));
        cells.extend(singles);
        cells.extend(batches);
    }

    let mut t = TextTable::new([
        "backend",
        "thieves",
        "mode",
        "Mtasks/s",
        "takes",
        "dups",
        "multi-grabs",
        "conserved",
    ]);
    let mut cells_json = String::new();
    for c in &cells {
        pass &= c.conserved;
        // A batched drain of a deep deque that never claims ≥ 2 tasks
        // at once is not exercising batching at all.
        if c.batched {
            pass &= c.multi_grabs > 0;
        }
        t.row([
            c.backend.to_string(),
            c.thieves.to_string(),
            if c.batched { "batch" } else { "single" }.to_string(),
            format!("{:.2}", c.meps),
            c.takes.to_string(),
            c.duplicates.to_string(),
            c.multi_grabs.to_string(),
            if c.conserved { "yes" } else { "LOST" }.to_string(),
        ]);
        if !cells_json.is_empty() {
            cells_json.push_str(",\n");
        }
        write!(
            cells_json,
            "    {{\"backend\":\"{}\",\"thieves\":{},\"batched\":{},\"meps\":{:.3},\
             \"takes\":{},\"duplicates\":{},\"multi_grabs\":{},\"conserved\":{}}}",
            c.backend,
            c.thieves,
            c.batched,
            c.meps,
            c.takes,
            c.duplicates,
            c.multi_grabs,
            c.conserved
        )
        .unwrap();
    }

    // Median of the per-sample batch/single ratio pairs (see
    // `drain_pair`), not a ratio of arm medians.
    let speedup = |name: &str, thieves: usize| {
        speedups
            .iter()
            .find(|(n, t, _)| *n == name && *t == thieves)
            .map(|(_, _, r)| *r)
            .unwrap()
    };
    // 1.05: the re-validated chain pays the fence per claim (see the
    // doc comment), so the bar is the amortized-age + reused-buffer
    // win, not the old fence elision.
    let gate_abp = speedup("abp", 2) >= 1.05 && speedup("abp", 4) >= 1.05;
    let gate_growable = speedup("abp-growable", 2) >= 1.05 && speedup("abp-growable", 4) >= 1.05;
    // Parity bar: the fence-free single steal already skips the seqcst
    // fence, so there is nothing for the batch to amortize beyond the
    // buffer reuse and the single trailing hint store (see doc above).
    // 0.9 = parity within the residual pairwise jitter on a shared core.
    let gate_ff = speedup("fence-free", 2) >= 0.9 && speedup("fence-free", 4) >= 0.9;
    pass &= gate_abp && gate_growable && gate_ff;

    // -- (2) federated amortization in the stepped simulator -------------
    // Same K = 4 topology as FD1's scaling arm, at the default-ish
    // cross-steal coin (0.125): infrequent cross-pool trips mean a
    // victim accumulates a real backlog between visits, which is
    // exactly when a steal-half batch pays off. Both arms share seeds,
    // so the comparison is single-vs-batched and nothing else. The
    // metric is round trips per migrated task: tasks past the first
    // in a batch ride an already-paid trip, so they are subtracted
    // from the attempt count before dividing by migrated tasks.
    let dag = if small {
        gen::fib(14, 3)
    } else {
        gen::fib(16, 3)
    };
    let seeds: Vec<u64> = if small { vec![5, 6] } else { vec![5, 6, 7] };
    let run_fed = |batch: BatchKind, seed: u64| {
        let mut k = DedicatedKernel::new(8);
        let cfg = ws_defaults(seed)
            .with_pools(4)
            .with_cross_steal(0.125)
            .with_policies(PolicySet::paper().with_batch(batch));
        run_ws(&dag, 8, &mut k, cfg)
    };
    let mut sim_rows = TextTable::new([
        "arm",
        "seed",
        "rounds",
        "remote att",
        "migrated",
        "trips/task",
        "batches",
        "batched",
    ]);
    let mut sim_json = String::new();
    let mut ratios = [0.0f64; 2]; // [single, batched] mean trips/task
    for (idx, batch) in [BatchKind::Single, BatchKind::Half { cap: 8 }]
        .into_iter()
        .enumerate()
    {
        let mut sum = 0.0;
        for &seed in &seeds {
            let r = run_fed(batch, seed);
            pass &= r.completed
                && r.steal_accounting_balanced()
                && r.locality_consistent()
                && r.batch_consistent();
            if batch.is_batched() {
                pass &= r.batch_steals > 0; // the batched arm must batch
            } else {
                pass &= r.batch_steals == 0 && r.batched_tasks == 0;
            }
            let per_task = r.remote_trips_per_migrated_task();
            sum += per_task;
            sim_rows.row([
                batch.label().to_string(),
                seed.to_string(),
                r.rounds.to_string(),
                r.remote_attempts.to_string(),
                r.remote_steals.to_string(),
                f3(per_task),
                r.batch_steals.to_string(),
                r.batched_tasks.to_string(),
            ]);
            if !sim_json.is_empty() {
                sim_json.push_str(",\n");
            }
            write!(
                sim_json,
                "    {{\"arm\":\"{}\",\"seed\":{},\"rounds\":{},\"remote_attempts\":{},\
                 \"remote_steals\":{},\"trips_per_migrated\":{:.4},\
                 \"batch_steals\":{},\"batched_tasks\":{}}}",
                batch.label(),
                seed,
                r.rounds,
                r.remote_attempts,
                r.remote_steals,
                r.remote_trips_per_migrated_task(),
                r.batch_steals,
                r.batched_tasks,
            )
            .unwrap();
        }
        ratios[idx] = sum / seeds.len() as f64;
    }
    let amortization = ratios[0] / ratios[1];
    let gate_amortized = amortization >= 2.0;
    pass &= gate_amortized;

    // -- (3) cold submit stays inside the ID1 envelope with batching -----
    fn wait_parked(pool: &ThreadPool, p: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if pool.sleeping_workers() == p {
                return true;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        pool.sleeping_workers() == p
    }
    fn cold_submit(
        pools: usize,
        p: usize,
        samples: usize,
        batch: BatchKind,
    ) -> (Vec<f64>, PoolReport) {
        let pool = ThreadPool::with_config(
            PoolConfig::default()
                .with_num_procs(p)
                .with_pools(pools)
                .with_policies(
                    PolicySet::paper()
                        .with_idle(IdleKind::ParkUntilWake { threshold: 4 })
                        .with_batch(batch),
                )
                .with_sleep(SleepKind::Eventcount),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop_c = Arc::clone(&stop);
        let metronome = std::thread::spawn(move || {
            while !stop_c.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_micros(25));
            }
        });
        let mut lats = Vec::with_capacity(samples);
        for _ in 0..samples {
            let _ = wait_parked(&pool, p, Duration::from_millis(200));
            let stamp = Arc::new(AtomicU64::new(0));
            let s = Arc::clone(&stamp);
            let t0 = Instant::now();
            pool.spawn(move || {
                s.store(t0.elapsed().as_nanos().max(1) as u64, Ordering::Release);
            });
            while stamp.load(Ordering::Acquire) == 0 {
                std::thread::sleep(Duration::from_micros(20));
            }
            lats.push(stamp.load(Ordering::Acquire) as f64);
        }
        stop.store(true, Ordering::Relaxed);
        metronome.join().unwrap();
        (lats, pool.shutdown())
    }
    fn quantile(sorted: &[f64], q: f64) -> f64 {
        sorted[((sorted.len() - 1) as f64 * q).round() as usize]
    }
    let p = 8;
    let cold_samples: usize = if small { 21 } else { 61 };
    let _ = cold_submit(1, p, 3, BatchKind::Single); // warm thread-spawn + first park
    let (mut flat_lat, flat_rep) = cold_submit(1, p, cold_samples, BatchKind::Single);
    let (mut fed_lat, fed_rep) = cold_submit(4, p, cold_samples, BatchKind::Half { cap: 8 });
    flat_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    fed_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let flat_med = quantile(&flat_lat, 0.5);
    let fed_med = quantile(&fed_lat, 0.5);
    let cold_ratio = fed_med / flat_med;
    let gate_cold = cold_ratio <= 4.0;
    pass &= gate_cold;
    pass &= flat_rep.stats.attempts_balance()
        && flat_rep.stats.batch_steals == 0
        && flat_rep.stats.batched_tasks == 0;
    pass &= fed_rep.stats.attempts_balance() && fed_rep.stats.batch_consistent();

    // -- (4) live churn: identities under real batched migration ---------
    fn churn(p: usize, pools: usize, batch: BatchKind, jobs: usize) -> PoolReport {
        let pool = Arc::new(ThreadPool::with_config(
            PoolConfig::default()
                .with_num_procs(p)
                .with_pools(pools)
                .with_policies(PolicySet::paper().with_batch(batch)),
        ));
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        let done: Arc<Vec<AtomicU8>> = Arc::new((0..jobs).map(|_| AtomicU8::new(0)).collect());
        let submitters: Vec<_> = (0..4)
            .map(|s| {
                let pool = Arc::clone(&pool);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let per = done.len() / 4;
                    for id in s * per..(s + 1) * per {
                        let done = Arc::clone(&done);
                        pool.spawn(move || {
                            done[id].fetch_add(1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        assert_eq!(pool.install(|| fib(18)), 2_584);
        for s in submitters {
            s.join().unwrap();
        }
        while done.iter().any(|c| c.load(Ordering::Relaxed) == 0) {
            std::thread::yield_now();
        }
        for c in done.iter() {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
        Arc::try_unwrap(pool)
            .unwrap_or_else(|_| panic!("all clones joined"))
            .shutdown()
    }
    let churn_jobs = if small { 400 } else { 1200 };
    let live_single = churn(p, 4, BatchKind::Single, churn_jobs);
    let live_batched = churn(p, 4, BatchKind::Half { cap: 8 }, churn_jobs);
    pass &= live_single.stats.attempts_balance()
        && live_single.stats.batch_steals == 0
        && live_single.stats.batched_tasks == 0;
    pass &= live_batched.stats.attempts_balance()
        && live_batched.stats.locality_consistent()
        && live_batched.stats.batch_consistent();

    // -- machine-readable artifact ---------------------------------------
    let artifact = format!(
        "{{\n  \"bench\": \"steal_batch\",\n  \"mode\": \"{}\",\n  \"cores\": {},\n  \
         \"drain\": {{\"entries\": {}, \"samples\": {}, \"batch_cap\": {}, \"cells\": [\n{}\n  ]}},\n  \
         \"drain_speedups\": {{\"abp_2t\": {:.3}, \"abp_4t\": {:.3}, \
         \"growable_2t\": {:.3}, \"growable_4t\": {:.3}, \
         \"fence_free_2t\": {:.3}, \"fence_free_4t\": {:.3}}},\n  \
         \"sim_federation\": {{\"pools\": 4, \"p\": 8, \"cross_steal\": 0.125, \"cells\": [\n{}\n  ],\n  \
         \"trips_per_migrated\": {{\"single\": {:.4}, \"batched\": {:.4}, \"amortization\": {:.4}}}}},\n  \
         \"cold_submit\": {{\"p\": {}, \"samples\": {}, \"flat_p50_ns\": {:.1}, \
         \"batched_federated_p50_ns\": {:.1}, \"ratio\": {:.4}}},\n  \
         \"live_churn\": {{\"single\": {{\"steals\": {}, \"batch_steals\": {}, \"batched_tasks\": {}}}, \
         \"batched\": {{\"steals\": {}, \"batch_steals\": {}, \"batched_tasks\": {}}}}},\n  \
         \"gates\": {{\"drain_abp\": {}, \"drain_growable\": {}, \"drain_fence_free\": {}, \
         \"amortized\": {}, \"cold_submit\": {}, \"all\": {}}}\n}}\n",
        if small { "small" } else { "full" },
        cores,
        entries,
        samples,
        batch_cap,
        cells_json,
        speedup("abp", 2),
        speedup("abp", 4),
        speedup("abp-growable", 2),
        speedup("abp-growable", 4),
        speedup("fence-free", 2),
        speedup("fence-free", 4),
        sim_json,
        ratios[0],
        ratios[1],
        amortization,
        p,
        cold_samples,
        flat_med,
        fed_med,
        cold_ratio,
        live_single.stats.steals,
        live_single.stats.batch_steals,
        live_single.stats.batched_tasks,
        live_batched.stats.steals,
        live_batched.stats.batch_steals,
        live_batched.stats.batched_tasks,
        gate_abp,
        gate_growable,
        gate_ff,
        gate_amortized,
        gate_cold,
        pass,
    );
    pass &= json::parse(&artifact).is_ok();
    let _ = std::fs::create_dir_all("target");
    let wrote = std::fs::write("target/BENCH_steal_batch.json", &artifact).is_ok();

    let body = format!(
        "drain matrix: {entries} entries, {samples} single+batch sample pairs per cell, \
         cap {batch_cap}, {cores} core(s)\n{}\n\
         gate (median of per-pair ratios): batch ≥ 1.05× single at 2 and 4 thieves \
         (amortized age + reused buffer; the fence is per claim, INV-SB-REVAL) — abp {:.2}×/{:.2}× ({}), \
         growable {:.2}×/{:.2}× ({}); fence-free ≥ parity (no fence to \
         amortize) {:.2}×/{:.2}× ({})\n\n\
         sim federation (K=4, P=8, cross-steal 0.125):\n{}\n\
         remote round trips per migrated task: single {:.2} vs batched {:.2} \
         (amortization {:.2}×; bar ≥ 2 — {})\n\n\
         cold submit to a fully parked P={p} pool ({cold_samples} samples/arm):\n\
         flat/single p50 {flat_med:.0} ns vs batched federated(K=4) p50 {fed_med:.0} ns \
         (ratio {cold_ratio:.2}; bar ≤ 4 — {})\n\n\
         live churn (P={p}, K=4, fib(18) + {churn_jobs} submissions): \
         single arm batch_steals={} batched_tasks={} (structural zeros); \
         batched arm steals={} batch_steals={} batched_tasks={} (identity + batch sub-count hold)\n\
         wrote target/BENCH_steal_batch.json ({} bytes{})",
        t.render(),
        speedup("abp", 2),
        speedup("abp", 4),
        if gate_abp { "ok" } else { "FAIL" },
        speedup("abp-growable", 2),
        speedup("abp-growable", 4),
        if gate_growable { "ok" } else { "FAIL" },
        speedup("fence-free", 2),
        speedup("fence-free", 4),
        if gate_ff { "ok" } else { "FAIL" },
        sim_rows.render(),
        ratios[0],
        ratios[1],
        amortization,
        if gate_amortized { "ok" } else { "FAIL" },
        if gate_cold { "ok" } else { "FAIL" },
        live_single.stats.batch_steals,
        live_single.stats.batched_tasks,
        live_batched.stats.steals,
        live_batched.stats.batch_steals,
        live_batched.stats.batched_tasks,
        artifact.len(),
        if wrote { "" } else { ", WRITE FAILED" },
    );
    ExpResult::new(
        "SB1",
        "Batched stealing: steal_half drains, amortized migration, envelope",
        body,
        pass,
    )
}

/// Runs every experiment, in index order.
pub fn all() -> Vec<ExpResult> {
    vec![
        fig1(),
        fig2(),
        thm1(),
        thm2(),
        thm9(),
        thm9_tail(),
        thm10(),
        thm11(),
        thm12(),
        hood_constant(),
        ablate_lock(),
        ablate_yield(),
        invariants(),
        deque_check(),
        ws_vs_sharing(),
        assign_policy(),
        hood_wallclock(),
        telemetry(),
        policies(false),
        serve(false),
        hotpath(),
        idle(false),
        par(false),
        deque_backends(false),
        theory(false),
        federation(false),
        steal_batch(false),
    ]
}
