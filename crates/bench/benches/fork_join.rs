//! Benchmarks for the hood runtime (experiment B1): fork-join throughput
//! across process counts and the two ablation axes (deque backend,
//! yields). On an oversubscribed machine the ABP-vs-locking and
//! yield-vs-no-yield gaps are the paper's headline practical results.

use abp_bench::harness::Harness;
use hood::{join, Backend, PoolConfig, ThreadPool};
use std::hint::black_box;

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    if n < 10 {
        let mut a = 0u64;
        let mut b = 1u64;
        for _ in 0..n {
            let c = a + b;
            a = b;
            b = c;
        }
        return a;
    }
    let (x, y) = join(|| fib(n - 1), || fib(n - 2));
    x + y
}

fn tree_sum(depth: u32) -> u64 {
    if depth == 0 {
        return 1;
    }
    let (a, b) = join(|| tree_sum(depth - 1), || tree_sum(depth - 1));
    a + b + 1
}

fn bench_fib(h: &Harness) {
    let mut g = h.group("fib24");
    g.sample_size(15);
    for p in [1usize, 2, 4] {
        let pool = ThreadPool::new(p);
        g.bench(&format!("P{p}"), || {
            pool.install(|| black_box(fib(24)));
        });
    }
    g.finish();
}

fn bench_tree_sum(h: &Harness) {
    let mut g = h.group("tree_sum_d14");
    g.sample_size(15);
    g.throughput_elems((1u64 << 15) - 1);
    for p in [1usize, 2, 4] {
        let pool = ThreadPool::new(p);
        g.bench(&format!("P{p}"), || {
            pool.install(|| black_box(tree_sum(14)));
        });
    }
    g.finish();
}

fn bench_backend_ablation(h: &Harness) {
    let mut g = h.group("backend_fib22_P4");
    g.sample_size(10);
    for (name, backend) in [
        ("abp", Backend::Abp { capacity: 1 << 15 }),
        ("locking", Backend::Locking),
    ] {
        let pool = ThreadPool::with_config(PoolConfig {
            num_procs: 4,
            backend,
            ..PoolConfig::default()
        });
        g.bench(name, || {
            pool.install(|| black_box(fib(22)));
        });
    }
    g.finish();
}

fn bench_yield_ablation(h: &Harness) {
    // Oversubscribe: P well beyond the machine's processors, so yields
    // matter (the multiprogrammed setting).
    let over = 4 * std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut g = h.group(&format!("yield_fib22_P{over}_oversubscribed"));
    g.sample_size(10);
    for (name, backoff) in [
        ("yield", hood::BackoffKind::Yield),
        ("no-yield", hood::BackoffKind::None),
    ] {
        // Pure spinning on the idle axis, as in the original Hood: the
        // yield is the only thing keeping thieves from wasting whole
        // quanta.
        let pool = ThreadPool::with_config(
            PoolConfig::default().with_num_procs(over).with_policies(
                hood::PolicySet::paper()
                    .with_backoff(backoff)
                    .with_idle(hood::IdleKind::Spin),
            ),
        );
        g.bench(name, || {
            pool.install(|| black_box(fib(22)));
        });
    }
    g.finish();
}

fn main() {
    let h = Harness::from_args("fork_join");
    bench_fib(&h);
    bench_tree_sum(&h);
    bench_backend_ablation(&h);
    bench_yield_ablation(&h);
}
