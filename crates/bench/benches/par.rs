//! Data-parallel layer benchmarks (experiment DP1's micro side): the
//! `hood::par` combinators against sequential baselines and against
//! eager grain recursion.
//!
//! Three groups:
//!
//! * `par_sort` — `std` sequential `sort_unstable` vs adaptive
//!   `par_sort_unstable` vs the same quicksort pinned to an eager grain;
//! * `par_reduce` — sequential iterator sum vs `par_iter().map().sum()`,
//!   adaptive vs eager vs forced-sequential splitter policies;
//! * `par_map` — sequential `collect` vs `map_collect` (the single-spine
//!   indexed collect).
//!
//! The binary also hard-asserts `map_collect`'s allocation discipline:
//! a whole 100k-element collect must cost the spine allocation plus
//! O(splits) bookkeeping — not O(n) per-node buffers. A counting
//! `#[global_allocator]` wrapper around `System` measures it directly.

use abp_bench::harness::Harness;
use hood::par::prelude::*;
use hood::{par_sort_unstable, PolicySet, PoolConfig, SplitKind, ThreadPool};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation made by the process.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn pool_with_split(split: SplitKind) -> ThreadPool {
    let p = std::thread::available_parallelism().map_or(4, |p| p.get());
    ThreadPool::with_config(PoolConfig {
        num_procs: p,
        policies: PolicySet {
            split,
            ..PolicySet::default()
        },
        ..PoolConfig::default()
    })
}

fn data(n: usize) -> Vec<u64> {
    use abp_dag::DetRng;
    let mut rng = DetRng::new(11);
    (0..n).map(|_| rng.below(u64::MAX / 2)).collect()
}

fn bench_par_sort(h: &Harness) {
    const N: usize = 200_000;
    let input = data(N);
    let mut g = h.group("par_sort");
    g.sample_size(10).throughput_elems(N as u64);
    g.bench_with_setup(
        "seq_std",
        || input.clone(),
        |mut v| {
            v.sort_unstable();
            black_box(v);
        },
    );
    let adaptive = pool_with_split(SplitKind::Adaptive);
    g.bench_with_setup(
        "adaptive",
        || input.clone(),
        |mut v| {
            adaptive.install(|| par_sort_unstable(&mut v));
            black_box(v);
        },
    );
    let eager = pool_with_split(SplitKind::EagerGrain { grain: 4_096 });
    g.bench_with_setup(
        "eager_4096",
        || input.clone(),
        |mut v| {
            eager.install(|| par_sort_unstable(&mut v));
            black_box(v);
        },
    );
    g.finish();
}

fn bench_par_reduce(h: &Harness) {
    const N: usize = 1_000_000;
    let v = data(N);
    let mut g = h.group("par_reduce");
    g.sample_size(10).throughput_elems(N as u64);
    g.bench("seq_iter", || {
        black_box(
            v.iter()
                .map(|&x| x ^ (x >> 7))
                .fold(0u64, u64::wrapping_add),
        );
    });
    let adaptive = pool_with_split(SplitKind::Adaptive);
    g.bench("adaptive", || {
        black_box(adaptive.install(|| {
            v.par_iter()
                .map(|&x| x ^ (x >> 7))
                .reduce(|| 0u64, u64::wrapping_add)
        }));
    });
    let eager = pool_with_split(SplitKind::EagerGrain { grain: 8_192 });
    g.bench("eager_8192", || {
        black_box(eager.install(|| {
            v.par_iter()
                .map(|&x| x ^ (x >> 7))
                .reduce(|| 0u64, u64::wrapping_add)
        }));
    });
    let seq = pool_with_split(SplitKind::Sequential);
    g.bench("policy_sequential", || {
        black_box(seq.install(|| {
            v.par_iter()
                .map(|&x| x ^ (x >> 7))
                .reduce(|| 0u64, u64::wrapping_add)
        }));
    });
    g.finish();
}

fn bench_par_map(h: &Harness) {
    const N: usize = 500_000;
    let v = data(N);
    let mut g = h.group("par_map");
    g.sample_size(10).throughput_elems(N as u64);
    g.bench("seq_collect", || {
        let out: Vec<u64> = v.iter().map(|&x| x.wrapping_mul(0x9E37_79B9)).collect();
        black_box(out);
    });
    let adaptive = pool_with_split(SplitKind::Adaptive);
    g.bench("map_collect", || {
        let out: Vec<u64> = adaptive.install(|| {
            v.par_iter()
                .map(|&x| x.wrapping_mul(0x9E37_79B9))
                .map_collect()
        });
        black_box(out);
    });
    g.finish();
}

/// `map_collect` must allocate the spine and nothing per-node: the whole
/// collect of 100k elements is allowed the output `Vec` plus O(splits)
/// bookkeeping, with a generous constant bound.
fn assert_map_collect_alloc_discipline() {
    let pool = pool_with_split(SplitKind::Adaptive);
    let v: Vec<u64> = (0..100_000).collect();
    // Warm the pool (worker wake-up paths may lazily allocate once).
    let _ = pool.install(|| v.par_iter().map(|&x| x + 1).map_collect());
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = pool.install(|| v.par_iter().map(|&x| x + 1).map_collect());
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(out.len(), v.len());
    assert!(
        delta <= 64,
        "map_collect of 100k elements made {delta} allocations — per-node allocation crept in"
    );
    println!("# map_collect allocations for 100k elements: {delta} (spine + O(splits))");
}

fn main() {
    let h = Harness::from_args("data-parallel layer (hood::par)");
    assert_map_collect_alloc_discipline();
    bench_par_sort(&h);
    bench_par_reduce(&h);
    bench_par_map(&h);
}
