//! Micro-benchmarks for the deque implementations (experiment B1):
//! uncontended owner ops, steal latency, and owner progress under thief
//! contention, ABP vs the locking baseline.

use abp_bench::harness::Harness;
use abp_deque::{LockingDeque, Steal};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn bench_owner_ops(h: &Harness) {
    let mut g = h.group("owner_push_pop");
    g.throughput_elems(1);
    {
        let (w, _s) = abp_deque::new::<u64>(1 << 12);
        g.bench("abp", || {
            w.push_bottom(black_box(42)).unwrap();
            black_box(w.pop_bottom());
        });
    }
    {
        let d = LockingDeque::new();
        g.bench("locking", || {
            d.push_bottom(black_box(42u64));
            black_box(d.pop_bottom());
        });
    }
    g.finish();
}

fn bench_push_steal_cycle(h: &Harness) {
    let mut g = h.group("push_then_steal");
    g.throughput_elems(64);
    {
        let (w, s) = abp_deque::new::<u64>(1 << 12);
        g.bench("abp", || {
            for i in 0..64u64 {
                w.push_bottom(i).unwrap();
            }
            let mut got = 0;
            while let Steal::Taken(v) = s.pop_top() {
                got += black_box(v) & 1;
            }
            // Reset indices via the owner's empty pop.
            assert!(w.pop_bottom().is_none());
            black_box(got);
        });
    }
    {
        let d = LockingDeque::new();
        g.bench("locking", || {
            for i in 0..64u64 {
                d.push_bottom(i);
            }
            let mut got = 0;
            while let Steal::Taken(v) = d.pop_top() {
                got += black_box(v) & 1;
            }
            black_box(got);
        });
    }
    g.finish();
}

/// Owner works while background thieves hammer the deque — the mixed
/// workload the relaxed semantics is designed for.
fn bench_contended(h: &Harness) {
    let mut g = h.group("contended_owner_progress");
    g.throughput_elems(256);
    g.sample_size(20);
    for thieves in [1usize, 3] {
        g.bench_with_setup(
            &format!("abp/{thieves}_thieves"),
            || {
                let (w, s) = abp_deque::new::<u64>(1 << 16);
                let stop = Arc::new(AtomicBool::new(false));
                let handles: Vec<_> = (0..thieves)
                    .map(|_| {
                        let s = s.clone();
                        let stop = Arc::clone(&stop);
                        std::thread::spawn(move || {
                            let mut taken = 0u64;
                            while !stop.load(Ordering::Acquire) {
                                if let Steal::Taken(v) = s.pop_top() {
                                    taken = taken.wrapping_add(v);
                                } else {
                                    std::thread::yield_now();
                                }
                            }
                            taken
                        })
                    })
                    .collect();
                (w, stop, handles)
            },
            |(w, stop, handles)| {
                for i in 0..256u64 {
                    w.push_bottom(i).unwrap();
                    if i % 4 == 0 {
                        black_box(w.pop_bottom());
                    }
                }
                while w.pop_bottom().is_some() {}
                stop.store(true, Ordering::Release);
                for h in handles {
                    black_box(h.join().unwrap());
                }
            },
        );
    }
    g.finish();
}

fn main() {
    let h = Harness::from_args("deque_ops");
    bench_owner_ops(&h);
    bench_push_steal_cycle(&h);
    bench_contended(&h);
}
