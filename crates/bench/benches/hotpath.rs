//! Hot-path micro-benchmarks (experiment HP1): the perf trajectory of the
//! memory-ordering relaxation and the allocation-light fork-join.
//!
//! Four groups:
//!
//! * `owner_pingpong` — uncontended `pushBottom`/`popBottom` under the
//!   blanket-SeqCst protocol vs the relaxed protocol (the headline
//!   before/after pair; both monomorphizations live in this one binary);
//! * `steal_throughput` — the owner streams entries while 1/2/4 thieves
//!   consume them, per protocol;
//! * `backend_pingpong` / `backend_steal` — the same two shapes run
//!   through the [`TaskDeque`] trait seam, ABP vs the fence-free
//!   multiplicity deque (experiment DQ1's matrix): the fence-free steal
//!   fast path has no `cas` on the shared `top`, so its advantage grows
//!   with the thief count;
//! * `backend_steal_batch` — the `backend_steal` traffic drained with
//!   `steal_batch_into(16)` and a reused buffer (experiment SB1's
//!   micro-shape): one age observation and zero allocations per grab
//!   (the fence itself is paid per claim — INV-SB-REVAL);
//! * `federation_steal` — the FD1 micro-shape: work in one of 8 deques
//!   labeled as 2 pools; a local (4-victim) scan vs a flat (8-victim)
//!   scan, 1/2/4 thieves — the wasted-probe cost hierarchical victim
//!   selection removes;
//! * `join_overhead` — full-granularity fork-join fib vs the sequential
//!   function, isolating per-`join` cost on the never-stolen fast path;
//! * `injector_submit` — external-submission latency through
//!   `ThreadPool::spawn` (shard lock + push + wakeup);
//! * `wake_latency` — cold submit → first instruction of the job on an
//!   all-parked pool, eventcount vs the condvar fallback (experiment
//!   ID1's headline pair);
//! * `idle_cpu` — sleep-subsystem churn under a trickle load: the
//!   eventcount's untimed parks ride out idle gaps silently, while the
//!   condvar baseline's 100 µs naps spin the park/unpark counters.

use abp_bench::harness::{Group, Harness};
use abp_deque::{
    new_with_order, AbpBackend, DequeOwner, DequeStealer, FenceFreeBackend, OrderProfile,
    RelaxedProtocol, SeqCstProtocol, Steal, TaskDeque,
};
use hood::{IdleKind, PolicySet, PoolConfig, SleepKind, ThreadPool};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn pingpong_with<P: OrderProfile>(g: &mut Group<'_>, label: &str) {
    let (w, _s) = new_with_order::<u64, P>(1 << 12);
    g.bench(label, || {
        w.push_bottom(black_box(42)).unwrap();
        black_box(w.pop_bottom());
    });
}

fn bench_owner_pingpong(h: &Harness) {
    let mut g = h.group("owner_pingpong");
    g.throughput_elems(1);
    pingpong_with::<SeqCstProtocol>(&mut g, "seqcst");
    pingpong_with::<RelaxedProtocol>(&mut g, "relaxed");
    g.finish();
}

/// Owner pushes a block of entries and drains leftovers while `thieves`
/// background threads pop the top; one iteration accounts for 256 pushes.
fn steal_throughput_with<P: OrderProfile>(g: &mut Group<'_>, label: &str, thieves: usize) {
    g.bench_with_setup(
        label,
        || {
            let (w, s) = new_with_order::<u64, P>(1 << 16);
            let stop = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = (0..thieves)
                .map(|_| {
                    let s = s.clone();
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut taken = 0u64;
                        while !stop.load(Ordering::Acquire) {
                            if let Steal::Taken(v) = s.pop_top() {
                                taken = taken.wrapping_add(v);
                            } else {
                                // Yield on a miss: on few-core machines a
                                // pure spin starves the owner for whole
                                // timeslices and measures the OS, not the
                                // deque.
                                std::thread::yield_now();
                            }
                        }
                        taken
                    })
                })
                .collect();
            (w, stop, handles)
        },
        |(w, stop, handles)| {
            for i in 0..256u64 {
                w.push_bottom(i).unwrap();
            }
            while w.pop_bottom().is_some() {}
            stop.store(true, Ordering::Release);
            for h in handles {
                black_box(h.join().unwrap());
            }
        },
    );
}

fn bench_steal_throughput(h: &Harness) {
    let mut g = h.group("steal_throughput");
    g.throughput_elems(256);
    g.sample_size(15);
    for thieves in [1usize, 2, 4] {
        steal_throughput_with::<SeqCstProtocol>(
            &mut g,
            &format!("seqcst/{thieves}_thieves"),
            thieves,
        );
        steal_throughput_with::<RelaxedProtocol>(
            &mut g,
            &format!("relaxed/{thieves}_thieves"),
            thieves,
        );
    }
    g.finish();
}

/// Uncontended owner `pushBottom`/`popBottom` through the trait seam —
/// the monomorphized cost the generic worker loops actually pay.
fn backend_pingpong_with<B: TaskDeque<u64>>(g: &mut Group<'_>, backend: &B) {
    let (w, _s) = backend.new_pair();
    g.bench(B::NAME, || {
        w.push_bottom(black_box(42)).unwrap();
        black_box(w.pop_bottom());
    });
}

fn bench_backend_pingpong(h: &Harness) {
    let mut g = h.group("backend_pingpong");
    g.throughput_elems(1);
    backend_pingpong_with(&mut g, &AbpBackend { capacity: 1 << 12 });
    backend_pingpong_with(&mut g, &FenceFreeBackend { capacity: 1 << 12 });
    g.finish();
}

/// The DQ1 matrix: same streaming shape as `steal_throughput`, but run
/// through [`DequeStealer::steal`] so ABP and fence-free face identical
/// traffic. Duplicates (fence-free only) are counted, not re-executed.
fn backend_steal_with<B: TaskDeque<u64>>(g: &mut Group<'_>, backend: &B, thieves: usize) {
    g.bench_with_setup(
        &format!("{}/{thieves}_thieves", B::NAME),
        || {
            let (w, s) = backend.new_pair();
            let stop = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = (0..thieves)
                .map(|_| {
                    let s = s.clone();
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut taken = 0u64;
                        while !stop.load(Ordering::Acquire) {
                            if let Steal::Taken(v) = s.steal() {
                                taken = taken.wrapping_add(v);
                            } else {
                                std::thread::yield_now();
                            }
                        }
                        taken
                    })
                })
                .collect();
            (w, stop, handles)
        },
        |(w, stop, handles)| {
            for i in 0..256u64 {
                w.push_bottom(i).unwrap();
            }
            while w.pop_bottom().is_some() {}
            stop.store(true, Ordering::Release);
            for h in handles {
                black_box(h.join().unwrap());
            }
        },
    );
}

fn bench_backend_steal(h: &Harness) {
    let mut g = h.group("backend_steal");
    g.throughput_elems(256);
    g.sample_size(15);
    for thieves in [1usize, 2, 4] {
        backend_steal_with(&mut g, &AbpBackend { capacity: 1 << 16 }, thieves);
        backend_steal_with(&mut g, &FenceFreeBackend { capacity: 1 << 16 }, thieves);
    }
    g.finish();
}

/// The SB1 companion to `backend_steal`: identical streaming traffic,
/// but each thief drains through [`DequeStealer::steal_batch_into`]
/// with a reused buffer (cap 16), so the measured delta against the
/// single-steal group is the per-grab cost batching amortizes — the
/// `thief_fence` on ABP, nothing but the buffer on fence-free.
fn backend_steal_batch_with<B: TaskDeque<u64>>(g: &mut Group<'_>, backend: &B, thieves: usize) {
    const CAP: usize = 16;
    g.bench_with_setup(
        &format!("{}/{thieves}_thieves", B::NAME),
        || {
            let (w, s) = backend.new_pair();
            let stop = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = (0..thieves)
                .map(|_| {
                    let s = s.clone();
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut taken = 0u64;
                        let mut buf = abp_deque::StolenBatch::empty();
                        while !stop.load(Ordering::Acquire) {
                            s.steal_batch_into(CAP, &mut buf);
                            if buf.tasks.is_empty() {
                                std::thread::yield_now();
                            } else {
                                for &v in &buf.tasks {
                                    taken = taken.wrapping_add(v);
                                }
                            }
                        }
                        taken
                    })
                })
                .collect();
            (w, stop, handles)
        },
        |(w, stop, handles)| {
            for i in 0..256u64 {
                w.push_bottom(i).unwrap();
            }
            while w.pop_bottom().is_some() {}
            stop.store(true, Ordering::Release);
            for h in handles {
                black_box(h.join().unwrap());
            }
        },
    );
}

fn bench_backend_steal_batch(h: &Harness) {
    let mut g = h.group("backend_steal_batch");
    g.throughput_elems(256);
    g.sample_size(15);
    for thieves in [1usize, 2, 4] {
        backend_steal_batch_with(&mut g, &AbpBackend { capacity: 1 << 16 }, thieves);
        backend_steal_batch_with(&mut g, &FenceFreeBackend { capacity: 1 << 16 }, thieves);
    }
    g.finish();
}

/// The FD1 micro-shape: 8 worker deques labeled as 2 pools of 4, with
/// work sitting in exactly one deque (the common sparse case a scanning
/// thief actually faces). A "local" thief scans only the loaded deque's
/// pool — 4 candidate victims; a "flat" thief scans all 8. The measured
/// difference is the wasted-probe cost hierarchical victim selection
/// removes, and it compounds as 1/2/4 thieves contend on the scan.
fn federation_steal_with(g: &mut Group<'_>, local: bool, thieves: usize) {
    const DEQUES: usize = 8;
    const POOL: usize = 4; // deques per pool
    const ITEMS: u64 = 256;
    let label = format!("{}/{thieves}_thieves", if local { "local" } else { "flat" });
    g.bench_with_setup(
        &label,
        || {
            let backend = AbpBackend { capacity: 1 << 12 };
            let (owners, stealers): (Vec<_>, Vec<_>) =
                (0..DEQUES).map(|_| backend.new_pair()).unzip();
            // The loaded deque is the last of pool 0, so a local scan
            // still probes empties before the hit.
            for i in 0..ITEMS {
                owners[POOL - 1].push_bottom(i).unwrap();
            }
            let taken = Arc::new(AtomicU64::new(0));
            let stop = Arc::new(AtomicBool::new(false));
            let handles: Vec<_> = (0..thieves)
                .map(|t| {
                    let window: Vec<_> = if local {
                        stealers[..POOL].to_vec()
                    } else {
                        stealers.to_vec()
                    };
                    let taken = Arc::clone(&taken);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        let mut v = t % window.len();
                        while !stop.load(Ordering::Acquire) {
                            if let Steal::Taken(x) = window[v].steal() {
                                black_box(x);
                                taken.fetch_add(1, Ordering::Relaxed);
                            }
                            v = (v + 1) % window.len();
                        }
                    })
                })
                .collect();
            (owners, taken, stop, handles)
        },
        |(owners, taken, stop, handles)| {
            while taken.load(Ordering::Relaxed) < ITEMS {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Release);
            for h in handles {
                h.join().unwrap();
            }
            drop(owners);
        },
    );
}

fn bench_federation_steal(h: &Harness) {
    let mut g = h.group("federation_steal");
    g.throughput_elems(256);
    g.sample_size(15);
    for thieves in [1usize, 2, 4] {
        federation_steal_with(&mut g, true, thieves);
        federation_steal_with(&mut g, false, thieves);
    }
    g.finish();
}

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

/// Full-granularity fork-join fib: every node is a `join`, so the
/// measured time is dominated by per-join overhead (push + pop + latch
/// bookkeeping), not arithmetic.
fn fib_join(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = hood::join(|| fib_join(n - 1), || fib_join(n - 2));
    a + b
}

fn bench_join_overhead(h: &Harness) {
    const N: u64 = 20;
    let mut g = h.group("join_overhead");
    g.sample_size(10);
    g.bench("sequential/fib20", || {
        black_box(fib_seq(black_box(N)));
    });
    let pool = ThreadPool::new(4);
    g.bench("join/fib20/p4", || {
        assert_eq!(pool.install(|| fib_join(N)), 6_765);
    });
    let pool1 = ThreadPool::new(1);
    g.bench("join/fib20/p1", || {
        assert_eq!(pool1.install(|| fib_join(N)), 6_765);
    });
    g.finish();
}

fn bench_injector_submit(h: &Harness) {
    let mut g = h.group("injector_submit");
    g.throughput_elems(1);
    let pool = ThreadPool::new(2);
    let done = Arc::new(AtomicU64::new(0));
    let mut submitted = 0u64;
    g.bench("spawn", || {
        let done = Arc::clone(&done);
        pool.spawn(move || {
            done.fetch_add(1, Ordering::Relaxed);
        });
        submitted += 1;
    });
    // Drain before shutdown so the measured pool never accumulates an
    // unbounded backlog across samples.
    while done.load(Ordering::Relaxed) < submitted {
        std::thread::yield_now();
    }
    g.finish();
}

/// Pool with the untimed-park policy and the given sleep backend, with a
/// small park threshold so workers reach the parked state quickly.
fn parked_pool(kind: SleepKind, p: usize) -> ThreadPool {
    ThreadPool::with_config(
        PoolConfig::default()
            .with_num_procs(p)
            .with_policies(PolicySet::paper().with_idle(IdleKind::ParkUntilWake { threshold: 4 }))
            .with_sleep(kind),
    )
}

const SLEEP_BACKENDS: [(&str, SleepKind); 2] = [
    ("eventcount", SleepKind::Eventcount),
    ("condvar", SleepKind::CondvarFallback),
];

/// One cold-submit cycle: wait for the pool to be fully parked, submit a
/// job that stamps its own submit→start latency, wait for the stamp.
/// The harness-reported time is the whole cycle (park-wait included);
/// the stamped submit→start p50 — the number ID1 gates on — is printed
/// as a supplementary line per backend.
fn bench_wake_latency(h: &Harness) {
    let mut g = h.group("wake_latency");
    g.sample_size(10);
    for (label, kind) in SLEEP_BACKENDS {
        let p = 4;
        let pool = parked_pool(kind, p);
        let stamps: Arc<std::sync::Mutex<Vec<u64>>> = Arc::default();
        let rec = Arc::clone(&stamps);
        g.bench(&format!("cold_cycle/{label}"), || {
            // The condvar backend's sleepers oscillate through naps, so
            // bound the fully-parked wait and fall through.
            let deadline = Instant::now() + Duration::from_millis(50);
            while pool.sleeping_workers() < p && Instant::now() < deadline {
                std::thread::sleep(Duration::from_micros(5));
            }
            let stamp = Arc::new(AtomicU64::new(0));
            let s = Arc::clone(&stamp);
            let t0 = Instant::now();
            pool.spawn(move || {
                s.store(t0.elapsed().as_nanos().max(1) as u64, Ordering::Release);
            });
            while stamp.load(Ordering::Acquire) == 0 {
                std::thread::sleep(Duration::from_micros(5));
            }
            rec.lock().unwrap().push(stamp.load(Ordering::Acquire));
        });
        let mut v = stamps.lock().unwrap().clone();
        if !v.is_empty() {
            v.sort_unstable();
            println!(
                "    ^- stamped submit→start: p50 {} over {} cold submits",
                abp_bench::harness::fmt_ns(v[v.len() / 2]),
                v.len()
            );
        }
        pool.shutdown();
    }
    g.finish();
}

/// A trickle load — one submission then a 200 µs silence per iteration —
/// and the sleep-subsystem churn it causes. The timed number is the
/// beat itself (dominated by the deliberate sleep); the story is the
/// counter line per backend: the condvar's bounded naps rack up
/// timed-out parks and spurious wakes across every idle gap, the
/// eventcount stays silent until woken.
fn bench_idle_cpu(h: &Harness) {
    let mut g = h.group("idle_cpu");
    g.sample_size(5);
    for (label, kind) in SLEEP_BACKENDS {
        let pool = parked_pool(kind, 4);
        g.bench(&format!("trickle/{label}"), || {
            let done = Arc::new(AtomicBool::new(false));
            let d = Arc::clone(&done);
            pool.spawn(move || d.store(true, Ordering::Release));
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_micros(20));
            }
            std::thread::sleep(Duration::from_micros(200));
        });
        let report = pool.shutdown();
        if report.stats.parks == 0 {
            // The group was filtered out; the pool never ran.
            continue;
        }
        println!(
            "    ^- {label}: parks {} unparks {} wakes_sent {} spurious {} timed_out {}",
            report.stats.parks,
            report.stats.unparks,
            report.sleep.wakes_sent,
            report.sleep.wakes_spurious,
            report.sleep.timed_out_parks,
        );
    }
    g.finish();
}

fn main() {
    let h = Harness::from_args("hotpath");
    bench_owner_pingpong(&h);
    bench_steal_throughput(&h);
    bench_backend_pingpong(&h);
    bench_backend_steal(&h);
    bench_backend_steal_batch(&h);
    bench_federation_steal(&h);
    bench_join_overhead(&h);
    bench_injector_submit(&h);
    bench_wake_latency(&h);
    bench_idle_cpu(&h);
}
