//! Benchmarks over the simulator itself: per-table timing of the
//! work-stealer under each adversary (so regressions in the simulator's
//! hot loop are caught), plus the offline schedulers.

use abp_bench::harness::Harness;
use abp_dag::gen;
use abp_kernel::{
    AdaptiveWorkerStarver, BenignKernel, CountSource, DedicatedKernel, KernelTable,
    ObliviousKernel, YieldPolicy,
};
use abp_sim::{brent, greedy, run_ws, WsConfig};
use std::hint::black_box;

fn bench_ws_adversaries(h: &Harness) {
    let dag = gen::fib(16, 3);
    let p = 8;
    let mut g = h.group("ws_sim_fib16");
    g.throughput_elems(dag.work());
    g.sample_size(20);
    g.bench("dedicated", || {
        let mut k = DedicatedKernel::new(p);
        black_box(run_ws(&dag, p, &mut k, WsConfig::default()));
    });
    g.bench("benign", || {
        let mut k = BenignKernel::new(p, CountSource::UniformBetween(1, 8), 5);
        black_box(run_ws(&dag, p, &mut k, WsConfig::default()));
    });
    g.bench("oblivious_rotating", || {
        let mut k = ObliviousKernel::rotating(p, 3, 10, 100_000);
        let cfg = WsConfig {
            yield_policy: YieldPolicy::ToRandom,
            ..WsConfig::default()
        };
        black_box(run_ws(&dag, p, &mut k, cfg));
    });
    g.bench("adaptive_starver", || {
        let mut k = AdaptiveWorkerStarver::new(p, CountSource::Constant(4), 5);
        black_box(run_ws(&dag, p, &mut k, WsConfig::default()));
    });
    g.finish();
}

fn bench_ws_invariant_overhead(h: &Harness) {
    let dag = gen::fork_join_tree(8, 2);
    let p = 6;
    let mut g = h.group("ws_sim_checking_overhead");
    g.sample_size(15);
    for (name, check) in [("unchecked", false), ("checked", true)] {
        g.bench(name, || {
            let mut k = DedicatedKernel::new(p);
            let cfg = WsConfig {
                check_structural: check,
                check_potential: check,
                ..WsConfig::default()
            };
            black_box(run_ws(&dag, p, &mut k, cfg));
        });
    }
    g.finish();
}

fn bench_offline(h: &Harness) {
    let dag = gen::fib(17, 3);
    let table = KernelTable::dedicated(8);
    let mut g = h.group("offline_fib17_P8");
    g.throughput_elems(dag.work());
    g.sample_size(20);
    g.bench("greedy", || {
        black_box(greedy(&dag, &table, 100_000_000).length());
    });
    g.bench("brent", || {
        black_box(brent(&dag, &table, 100_000_000).length());
    });
    g.finish();
}

fn bench_generators(h: &Harness) {
    let mut g = h.group("dag_generators");
    g.sample_size(20);
    g.bench("fork_join_tree(12,2)", || {
        black_box(gen::fork_join_tree(12, 2).work());
    });
    g.bench("fib(20,4)", || {
        black_box(gen::fib(20, 4).work());
    });
    g.bench("series_parallel(50k)", || {
        black_box(gen::random_series_parallel(7, 50_000).work());
    });
    g.finish();
}

fn main() {
    let h = Harness::from_args("simulator");
    bench_ws_adversaries(&h);
    bench_ws_invariant_overhead(&h);
    bench_offline(&h);
    bench_generators(&h);
}
