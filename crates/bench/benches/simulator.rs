//! Criterion benchmarks over the simulator itself: per-table timing of
//! the work-stealer under each adversary (so regressions in the
//! simulator's hot loop are caught), plus the offline schedulers.

use abp_dag::gen;
use abp_kernel::{
    AdaptiveWorkerStarver, BenignKernel, CountSource, DedicatedKernel, KernelTable,
    ObliviousKernel, YieldPolicy,
};
use abp_sim::{brent, greedy, run_ws, WsConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_ws_adversaries(c: &mut Criterion) {
    let dag = gen::fib(16, 3);
    let p = 8;
    let mut g = c.benchmark_group("ws_sim_fib16");
    g.throughput(Throughput::Elements(dag.work()));
    g.sample_size(20);
    g.bench_function("dedicated", |b| {
        b.iter(|| {
            let mut k = DedicatedKernel::new(p);
            black_box(run_ws(&dag, p, &mut k, WsConfig::default()))
        });
    });
    g.bench_function("benign", |b| {
        b.iter(|| {
            let mut k = BenignKernel::new(p, CountSource::UniformBetween(1, 8), 5);
            black_box(run_ws(&dag, p, &mut k, WsConfig::default()))
        });
    });
    g.bench_function("oblivious_rotating", |b| {
        b.iter(|| {
            let mut k = ObliviousKernel::rotating(p, 3, 10, 100_000);
            let cfg = WsConfig {
                yield_policy: YieldPolicy::ToRandom,
                ..WsConfig::default()
            };
            black_box(run_ws(&dag, p, &mut k, cfg))
        });
    });
    g.bench_function("adaptive_starver", |b| {
        b.iter(|| {
            let mut k = AdaptiveWorkerStarver::new(p, CountSource::Constant(4), 5);
            black_box(run_ws(&dag, p, &mut k, WsConfig::default()))
        });
    });
    g.finish();
}

fn bench_ws_invariant_overhead(c: &mut Criterion) {
    let dag = gen::fork_join_tree(8, 2);
    let p = 6;
    let mut g = c.benchmark_group("ws_sim_checking_overhead");
    g.sample_size(15);
    for (name, check) in [("unchecked", false), ("checked", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut k = DedicatedKernel::new(p);
                let cfg = WsConfig {
                    check_structural: check,
                    check_potential: check,
                    ..WsConfig::default()
                };
                black_box(run_ws(&dag, p, &mut k, cfg))
            });
        });
    }
    g.finish();
}

fn bench_offline(c: &mut Criterion) {
    let dag = gen::fib(17, 3);
    let table = KernelTable::dedicated(8);
    let mut g = c.benchmark_group("offline_fib17_P8");
    g.throughput(Throughput::Elements(dag.work()));
    g.sample_size(20);
    g.bench_function("greedy", |b| {
        b.iter(|| black_box(greedy(&dag, &table, 100_000_000).length()));
    });
    g.bench_function("brent", |b| {
        b.iter(|| black_box(brent(&dag, &table, 100_000_000).length()));
    });
    g.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("dag_generators");
    g.sample_size(20);
    g.bench_function("fork_join_tree(12,2)", |b| {
        b.iter(|| black_box(gen::fork_join_tree(12, 2).work()));
    });
    g.bench_function("fib(20,4)", |b| {
        b.iter(|| black_box(gen::fib(20, 4).work()));
    });
    g.bench_function("series_parallel(50k)", |b| {
        b.iter(|| black_box(gen::random_series_parallel(7, 50_000).work()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ws_adversaries,
    bench_ws_invariant_overhead,
    bench_offline,
    bench_generators
);
criterion_main!(benches);
