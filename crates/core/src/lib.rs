//! **abp-core** — the shared scheduling-policy layer.
//!
//! The paper's work stealer (Figure 3) fixes one policy point: a thief
//! yields (line 15), picks a **uniformly random** victim (line 16), and
//! tries `popTop` on the victim's deque (line 17). The analysis machinery
//! of Section 4 — throws, the potential function, the enabling tree — is
//! exactly the instrument for comparing *alternative* policies, so this
//! crate factors the three policy points out of the two execution
//! surfaces (the `hood` threaded runtime and the `abp-sim`
//! instruction-level simulator) into pluggable traits:
//!
//! * [`VictimSelector`] — who to rob (Figure 3, line 16). Implementations:
//!   [`UniformVictim`] (the paper), [`RoundRobinVictim`], the
//!   affinity-flavoured [`LastVictim`] leapfrog, and the enabling-tree
//!   driven [`LastEnabler`] (fed by the cache model's deviation signal).
//! * [`ContentionBackoff`] — what to do between failed steal attempts
//!   (Figure 3, line 15). Implementations: [`PlainYield`] (the paper),
//!   [`NoBackoff`] (line 15 removed), [`ExpJitterBackoff`] (truncated
//!   exponential with seeded jitter), and [`SpinThenYield`].
//! * [`IdlePolicy`] — what a persistently work-less thief does with its
//!   quantum. Implementations: [`SpinIdle`] (yield-per-throw, the paper)
//!   and [`ParkAfter`] (park after `k` consecutive failures, the Hood
//!   engineering compromise).
//!
//! A cloneable [`PolicySet`] names one choice per axis (the spec that
//! lives inside `WsConfig`/`PoolConfig`), and a per-worker
//! [`PolicyEngine`] holds the built trait objects plus the seeded
//! [`PolicyRng`], so both surfaces make **identical decisions from
//! identical seeds**: the simulator and the runtime thread the same
//! engine protocol (`backoff_action` → `begin_scan` → `next_victim` →
//! `observe`) through their otherwise very different steal loops.
//!
//! * [`InjectPolicy`] — how often a work-less worker polls the external
//!   submission injector, when the runtime has one. Implementations:
//!   [`EveryScan`] (once per victim scan, the default), [`EveryN`]
//!   (every n-th failed hunt), and [`NeverInject`] (the pre-injector
//!   behavior, for ablation).
//!
//! * [`SplitKind`] — when a data-parallel computation forks vs. runs a
//!   range sequentially, for runtimes with a `par_iter`-style layer.
//!   Consulted from inside running jobs (not the steal loop), so it is a
//!   plain spec with no engine hook: `Adaptive` (split while idle
//!   workers are visible, the default), `EagerGrain` (recurse to an
//!   explicit grain, the classic baseline), and `Sequential`.
//!
//! * [`BatchKind`] — how many tasks one successful cross-pool steal
//!   migrates: `Single` (the paper's one-task semantics, the default)
//!   or `Half { cap }` (claim up to half the victim's visible backlog
//!   in one grab). Like the split axis it is a plain spec read directly
//!   by the runtime's steal path — it draws no randomness, so the
//!   default keeps rng streams byte-identical.
//!
//! [`bounds`] holds the machine-checkable theory predicates next to the
//! tally they consume: the Leiserson et al. rooted-tree steal bound
//! ([`StealBoundCheck`]) and the work-stealing cache bound
//! ([`CacheBoundCheck`]), both reporting gap ratios rather than bare
//! pass/fail.
//!
//! [`StealTally`] is the shared attempt accounting; it maintains the
//! identity `attempts == hits + aborts + empties + injects` that both
//! surfaces assert (`injects` stays zero on surfaces without an
//! injector, reducing to the classic three-way identity).
//!
//! ```
//! use abp_core::{PolicyEngine, PolicySet, PolicyRng, StealResult};
//!
//! let set = PolicySet::paper(); // uniform victim + yield + spin idle
//! let mut eng = PolicyEngine::new(&set, PolicyRng::new(0x5EED));
//! eng.begin_scan(0, 4);
//! let v = eng.next_victim(0, 4);
//! assert!(v != 0 && v < 4);
//! eng.observe(v, StealResult::Empty);
//! eng.note_failed();
//! assert_eq!(eng.fails(), 1);
//! ```

pub mod backoff;
pub mod batch;
pub mod bounds;
pub mod engine;
pub mod idle;
pub mod inject;
pub mod rng;
pub mod split;
pub mod tally;
pub mod victim;

pub use backoff::{
    BackoffAction, BackoffKind, ContentionBackoff, ExpJitterBackoff, NoBackoff, PlainYield,
    SpinThenYield,
};
pub use batch::BatchKind;
pub use bounds::{
    cache_extra_miss_bound, rooted_tree_steal_bound, CacheBoundCheck, StealBoundCheck, CACHE_KAPPA,
};
pub use engine::{coin_threshold, PolicyEngine, PolicySet};
pub use idle::{IdleAction, IdleKind, IdlePolicy, ParkAfter, ParkUntilWakeIdle, SpinIdle};
pub use inject::{EveryN, EveryScan, InjectKind, InjectPolicy, NeverInject};
pub use rng::PolicyRng;
pub use split::SplitKind;
pub use tally::{StealResult, StealTally};
pub use victim::{
    LastEnabler, LastVictim, RoundRobinVictim, UniformVictim, VictimKind, VictimSelector,
};
