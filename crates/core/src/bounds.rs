//! Machine-checkable theory bounds for the steal-validation suite.
//!
//! Two published results about work stealing state quantities the
//! instruction-stepped simulator measures exactly, so both can be
//! asserted per run instead of merely cited:
//!
//! * **Rooted-tree steal bound** (Leiserson, Schardl, Suksompong,
//!   *Upper Bounds on Number of Steals in Rooted Trees*): `P`
//!   processors executing a rooted tree of branching factor `k` and
//!   height `h` under work stealing perform at most
//!   `Σ_{i=1}^{P−1} k^i · C(h, i)` successful steals
//!   ([`rooted_tree_steal_bound`], checked via [`StealBoundCheck`]).
//! * **Work-stealing cache bound** (Acar, Blelloch, Blumofe; Gu,
//!   Napier, Sun, *Analysis of Work-Stealing and Parallel Cache
//!   Complexity*): with per-processor LRU caches of `M` lines, the
//!   parallel miss count exceeds the serial one by at most `O(M)` per
//!   *deviation* — a node executed on a different processor than its
//!   enabling-tree designated parent ([`cache_extra_miss_bound`],
//!   checked via [`CacheBoundCheck`]).
//!
//! Checkers record the **gap ratio** (observed / bound), not just
//! pass/fail, so experiments can report how loose each bound runs.

/// Hidden constant `κ` of the cache bound's `O(M)`-per-deviation term:
/// a deviated subcomputation rewarms at most `M` lines it would have
/// found resident serially, and its return/join disturbs at most `M`
/// more, so extra misses ≤ `κ·M` per deviation with `κ = 2`.
pub const CACHE_KAPPA: u64 = 2;

/// The Leiserson et al. upper bound on successful steals: `P` processors
/// executing a rooted tree of branching factor `branching` and height
/// `height` (in edges) steal at most `Σ_{i=1}^{min(P−1, h)} k^i·C(h, i)`
/// times. Computed in `f64` and saturating to `+∞` on overflow (the
/// check `observed ≤ bound` stays sound either way).
///
/// `P = 1` (no thieves) and `height = 0` (a bare root) give 0.
pub fn rooted_tree_steal_bound(branching: u64, height: u64, procs: usize) -> f64 {
    if procs <= 1 || height == 0 || branching == 0 {
        return 0.0;
    }
    let k = branching as f64;
    let h = height as f64;
    let mut sum = 0.0f64;
    let mut term = 1.0f64; // k^i · C(h, i), built incrementally
    let top = (procs as u64 - 1).min(height);
    for i in 1..=top {
        // C(h, i) = C(h, i−1) · (h − i + 1) / i.
        term *= k * (h - i as f64 + 1.0) / i as f64;
        sum += term;
        if !sum.is_finite() {
            return f64::INFINITY;
        }
    }
    sum
}

/// One steal-bound verdict: an observed successful-steal count against
/// a bound value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StealBoundCheck {
    /// Successful steals the run performed (`StealTally::hits`).
    pub observed: u64,
    /// The applicable upper bound.
    pub bound: f64,
}

impl StealBoundCheck {
    /// Checks `observed` steals against the rooted-tree bound for a
    /// tree of the given branching factor and height on `procs`
    /// processors, additionally capped by `edges` (each successful
    /// steal removes one pushed continuation, and at most one is
    /// pushed per tree edge — so `observed ≤ edges` always).
    pub fn rooted_tree(
        observed: u64,
        branching: u64,
        height: u64,
        edges: u64,
        procs: usize,
    ) -> Self {
        let bound = rooted_tree_steal_bound(branching, height, procs).min(edges as f64);
        StealBoundCheck { observed, bound }
    }

    /// True iff the bound holds.
    pub fn holds(&self) -> bool {
        self.observed as f64 <= self.bound
    }

    /// Observed / bound: 0 when nothing was stolen, > 1 iff violated.
    pub fn gap_ratio(&self) -> f64 {
        if self.observed == 0 {
            return 0.0;
        }
        if self.bound == 0.0 {
            return f64::INFINITY;
        }
        self.observed as f64 / self.bound
    }
}

/// The checkable form of the work-stealing cache bound: extra parallel
/// misses over the serial run are at most [`CACHE_KAPPA`]`·M` per
/// deviation. Saturates instead of overflowing.
pub fn cache_extra_miss_bound(deviations: u64, cache_lines: u64) -> u64 {
    CACHE_KAPPA
        .saturating_mul(cache_lines)
        .saturating_mul(deviations)
}

/// One cache-bound verdict: a parallel run's miss count against the
/// serial baseline plus the deviation term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheBoundCheck {
    /// Misses of the `P = 1` run of the same computation (`Q₁`).
    pub serial_misses: u64,
    /// Misses of the parallel run (`Q_P`).
    pub parallel_misses: u64,
    /// Deviations: nodes executed on a different processor than their
    /// enabling-tree designated parent.
    pub deviations: u64,
    /// Per-processor cache capacity in lines (`M`).
    pub cache_lines: u64,
}

impl CacheBoundCheck {
    /// `max(Q_P − Q₁, 0)` — parallel caches have more aggregate
    /// capacity, so the difference can be negative.
    pub fn extra_misses(&self) -> u64 {
        self.parallel_misses.saturating_sub(self.serial_misses)
    }

    /// The bound value `κ·M·deviations`.
    pub fn bound(&self) -> u64 {
        cache_extra_miss_bound(self.deviations, self.cache_lines)
    }

    /// True iff the extra-miss term is within the bound. With zero
    /// deviations the parallel run must miss no more than the serial
    /// one.
    pub fn holds(&self) -> bool {
        self.extra_misses() <= self.bound()
    }

    /// Extra misses / bound: 0 when there were none, > 1 iff violated.
    pub fn gap_ratio(&self) -> f64 {
        if self.extra_misses() == 0 {
            return 0.0;
        }
        if self.bound() == 0 {
            return f64::INFINITY;
        }
        self.extra_misses() as f64 / self.bound() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_procs_bound_is_k_times_h() {
        // Σ_{i=1}^{1} k^i·C(h,i) = k·h.
        assert_eq!(rooted_tree_steal_bound(2, 7, 2), 14.0);
        assert_eq!(rooted_tree_steal_bound(3, 5, 2), 15.0);
    }

    #[test]
    fn hand_computed_small_cases() {
        // k=2, h=3, P=3: 2·3 + 4·C(3,2) = 6 + 12 = 18.
        assert_eq!(rooted_tree_steal_bound(2, 3, 3), 18.0);
        // k=2, h=3, P=4: 18 + 8·C(3,3) = 26; more procs than height
        // adds nothing beyond i = h.
        assert_eq!(rooted_tree_steal_bound(2, 3, 4), 26.0);
        assert_eq!(rooted_tree_steal_bound(2, 3, 9), 26.0);
    }

    #[test]
    fn degenerate_cases_are_zero() {
        assert_eq!(rooted_tree_steal_bound(2, 5, 1), 0.0);
        assert_eq!(rooted_tree_steal_bound(2, 0, 8), 0.0);
        assert_eq!(rooted_tree_steal_bound(0, 5, 8), 0.0);
    }

    #[test]
    fn bound_is_monotone_in_every_parameter() {
        let base = rooted_tree_steal_bound(2, 10, 4);
        assert!(rooted_tree_steal_bound(3, 10, 4) > base);
        assert!(rooted_tree_steal_bound(2, 11, 4) > base);
        assert!(rooted_tree_steal_bound(2, 10, 5) > base);
    }

    #[test]
    fn huge_parameters_saturate_to_infinity() {
        let b = rooted_tree_steal_bound(1 << 40, 1 << 40, 1024);
        assert_eq!(b, f64::INFINITY);
        // Saturated bounds still accept any observation.
        let c = StealBoundCheck {
            observed: u64::MAX,
            bound: b,
        };
        assert!(c.holds());
    }

    #[test]
    fn steal_check_accepts_and_reports_gap() {
        let c = StealBoundCheck::rooted_tree(5, 2, 7, 100, 2);
        assert!(c.holds());
        assert!((c.gap_ratio() - 5.0 / 14.0).abs() < 1e-12);
        // Zero observed: gap 0 even with a zero bound.
        let z = StealBoundCheck::rooted_tree(0, 2, 7, 100, 1);
        assert!(z.holds());
        assert_eq!(z.gap_ratio(), 0.0);
    }

    #[test]
    fn forged_steal_count_is_rejected() {
        // Non-vacuity: inflate the observation past the bound and the
        // checker must reject it.
        let honest = StealBoundCheck::rooted_tree(10, 2, 7, 1000, 2);
        assert!(honest.holds());
        let forged = StealBoundCheck::rooted_tree(honest.bound as u64 + 1, 2, 7, 1000, 2);
        assert!(!forged.holds());
        assert!(forged.gap_ratio() > 1.0);
        // A single thief on a bare root must steal nothing.
        let impossible = StealBoundCheck::rooted_tree(1, 2, 0, 0, 8);
        assert!(!impossible.holds());
        assert_eq!(impossible.gap_ratio(), f64::INFINITY);
    }

    #[test]
    fn edge_cap_tightens_tall_thin_trees() {
        // A spine of 20 edges on 8 procs: the k-ary formula explodes in
        // P, but steals can never exceed the 20 pushable continuations.
        let c = StealBoundCheck::rooted_tree(3, 1, 20, 20, 8);
        assert!(c.bound <= 20.0);
        assert!(c.holds());
    }

    #[test]
    fn cache_check_holds_and_rejects() {
        let ok = CacheBoundCheck {
            serial_misses: 100,
            parallel_misses: 140,
            deviations: 5,
            cache_lines: 16,
        };
        assert_eq!(ok.extra_misses(), 40);
        assert_eq!(ok.bound(), 2 * 16 * 5);
        assert!(ok.holds());
        assert!((ok.gap_ratio() - 40.0 / 160.0).abs() < 1e-12);
        // Forged: more extra misses than κ·M·ν.
        let bad = CacheBoundCheck {
            parallel_misses: 100 + 161,
            ..ok
        };
        assert!(!bad.holds());
        assert!(bad.gap_ratio() > 1.0);
    }

    #[test]
    fn cache_check_zero_deviations_requires_no_extra() {
        let strict = CacheBoundCheck {
            serial_misses: 50,
            parallel_misses: 50,
            deviations: 0,
            cache_lines: 16,
        };
        assert!(strict.holds());
        assert_eq!(strict.gap_ratio(), 0.0);
        let violating = CacheBoundCheck {
            parallel_misses: 51,
            ..strict
        };
        assert!(!violating.holds());
        assert_eq!(violating.gap_ratio(), f64::INFINITY);
    }

    #[test]
    fn parallel_can_beat_serial_without_underflow() {
        let c = CacheBoundCheck {
            serial_misses: 80,
            parallel_misses: 60,
            deviations: 3,
            cache_lines: 8,
        };
        assert_eq!(c.extra_misses(), 0);
        assert!(c.holds());
    }
}
