//! Steal batching — how many tasks one successful cross-pool steal
//! migrates.
//!
//! The paper's thief loop (Figure 3, line 17) moves exactly one thread
//! per successful `popTop`, so every migration pays a full
//! synchronization round-trip: fence, victim cache line, wake. When a
//! whole *pool* is starved (the federated topology of DESIGN.md §13),
//! that cost repeats once per repatriated task, which is exactly the
//! overhead the amortized-synchronization line of work attacks: claim
//! a batch under one synchronization episode, keep one task, and seed
//! the local pool with the rest.
//!
//! Like [`crate::SplitKind`], this axis is consulted directly by the
//! runtime's steal path rather than through a `PolicyEngine` hook — the
//! batch size is a property of the grab, not a per-attempt random
//! decision, so it draws no randomness and the default keeps every rng
//! stream byte-identical to the single-steal scheduler.

/// Cloneable spec for the steal batch size, the sixth
/// [`crate::PolicySet`] axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchKind {
    /// One task per successful steal — the paper's semantics and the
    /// default, byte-identical to the pre-batching scheduler.
    #[default]
    Single,
    /// Claim up to half the victim's visible backlog in one grab,
    /// bounded by `cap` tasks: the thief keeps one and pushes the rest
    /// to its own deque bottom, waking sleepers in its own pool.
    Half {
        /// Maximum tasks per grab (clamped to ≥ 1).
        cap: usize,
    },
}

impl BatchKind {
    /// Short stable label for policy identity strings.
    pub fn label(&self) -> &'static str {
        match self {
            BatchKind::Single => "batch-single",
            BatchKind::Half { .. } => "batch-half",
        }
    }

    /// The per-grab task bound: 1 under [`BatchKind::Single`], `cap`
    /// (clamped to ≥ 1) under [`BatchKind::Half`].
    pub fn cap(&self) -> usize {
        match self {
            BatchKind::Single => 1,
            BatchKind::Half { cap } => (*cap).max(1),
        }
    }

    /// True when steals move more than one task at a time.
    pub fn is_batched(&self) -> bool {
        !matches!(self, BatchKind::Single)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(BatchKind::Single.label(), "batch-single");
        assert_eq!(BatchKind::Half { cap: 8 }.label(), "batch-half");
        assert_eq!(BatchKind::default(), BatchKind::Single);
    }

    #[test]
    fn cap_clamps_to_one() {
        assert_eq!(BatchKind::Single.cap(), 1);
        assert_eq!(BatchKind::Half { cap: 0 }.cap(), 1);
        assert_eq!(BatchKind::Half { cap: 8 }.cap(), 8);
        assert!(!BatchKind::Single.is_batched());
        assert!(BatchKind::Half { cap: 8 }.is_batched());
    }
}
