//! Idle policy: what a persistently work-less thief does with its
//! quantum.
//!
//! The paper's process never blocks — it keeps throwing, yielding
//! between throws, which is what the non-blocking analysis (Theorem 9)
//! charges for. Real runtimes (Hood included) eventually park an idle
//! worker to stop burning a core; that trades the clean per-throw
//! accounting for lower multiprogramming interference. [`SpinIdle`] is
//! the paper, [`ParkAfter`] is the engineering compromise — and because
//! parking removes the worker from the throw/milestone economy, the
//! simulator gates Lemma-7-style checks on [`IdlePolicy::may_park`].

/// What an idle worker does next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleAction {
    /// Keep hunting: go attempt another steal.
    Steal,
    /// Park for `n` units (microseconds in the runtime, instructions in
    /// the simulator), then resume hunting.
    Park(u32),
    /// Park with no timeout: stay asleep until a producer wakes this
    /// worker. Only sound on a runtime whose sleep subsystem closes the
    /// missed-wakeup race by construction (the `hood::sleep` eventcount);
    /// the timed [`IdleAction::Park`] is the legacy compromise that
    /// papered over that race with a bounded nap.
    ParkUntilWake,
}

/// Decides whether a worker with no work keeps stealing or parks.
pub trait IdlePolicy: Send {
    /// Next action given `fails` consecutive failures to find work.
    fn on_idle(&mut self, fails: u32) -> IdleAction;

    /// Short identity label, e.g. `"spin"`.
    fn name(&self) -> &'static str;

    /// True if this policy can emit [`IdleAction::Park`]; parking
    /// invalidates the paper's milestone accounting.
    fn may_park(&self) -> bool;
}

/// Cloneable spec for an idle policy (lives in configs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdleKind {
    /// Never park — yield-per-throw forever, the paper's loop.
    #[default]
    Spin,
    /// Park for `park_len` units after `threshold` consecutive failures.
    ParkAfter { threshold: u32, park_len: u32 },
    /// Park *untimed* after `threshold` consecutive failures and stay
    /// asleep until woken. The successor to [`IdleKind::ParkAfter`] for
    /// runtimes with an eventcount sleep/wake subsystem; labels and rng
    /// streams of the two legacy kinds are untouched, so existing policy
    /// goldens stay byte-identical.
    ParkUntilWake { threshold: u32 },
}

impl IdleKind {
    /// Builds the idle policy this spec names.
    pub fn build(self) -> Box<dyn IdlePolicy> {
        match self {
            IdleKind::Spin => Box::new(SpinIdle),
            IdleKind::ParkAfter {
                threshold,
                park_len,
            } => Box::new(ParkAfter::new(threshold, park_len)),
            IdleKind::ParkUntilWake { threshold } => Box::new(ParkUntilWakeIdle::new(threshold)),
        }
    }

    /// Short identity label.
    pub fn label(self) -> &'static str {
        match self {
            IdleKind::Spin => "spin",
            IdleKind::ParkAfter { .. } => "park",
            IdleKind::ParkUntilWake { .. } => "park-wake",
        }
    }
}

/// The paper's idle behaviour: never park, keep throwing.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpinIdle;

impl IdlePolicy for SpinIdle {
    fn on_idle(&mut self, _fails: u32) -> IdleAction {
        IdleAction::Steal
    }

    fn name(&self) -> &'static str {
        "spin"
    }

    fn may_park(&self) -> bool {
        false
    }
}

/// Hood's compromise: after `threshold` consecutive failed hunts, park
/// for `park_len` units before trying again (bounded, so a worker never
/// sleeps through newly created work for long).
#[derive(Debug, Clone, Copy)]
pub struct ParkAfter {
    threshold: u32,
    park_len: u32,
}

impl ParkAfter {
    pub fn new(threshold: u32, park_len: u32) -> Self {
        ParkAfter {
            threshold: threshold.max(1),
            park_len: park_len.max(1),
        }
    }
}

impl Default for ParkAfter {
    fn default() -> Self {
        ParkAfter::new(64, 100)
    }
}

impl IdlePolicy for ParkAfter {
    fn on_idle(&mut self, fails: u32) -> IdleAction {
        if fails >= self.threshold {
            IdleAction::Park(self.park_len)
        } else {
            IdleAction::Steal
        }
    }

    fn name(&self) -> &'static str {
        "park"
    }

    fn may_park(&self) -> bool {
        true
    }
}

/// The eventcount-era idle policy: after `threshold` consecutive failed
/// hunts, hand the quantum back to the kernel for good — the runtime's
/// sleep subsystem guarantees a producer will wake the worker, so no
/// timeout is needed (and none is taken: a timed park that never fires
/// is still a syscall the kernel must arm).
#[derive(Debug, Clone, Copy)]
pub struct ParkUntilWakeIdle {
    threshold: u32,
}

impl ParkUntilWakeIdle {
    pub fn new(threshold: u32) -> Self {
        ParkUntilWakeIdle {
            threshold: threshold.max(1),
        }
    }
}

impl Default for ParkUntilWakeIdle {
    fn default() -> Self {
        ParkUntilWakeIdle::new(64)
    }
}

impl IdlePolicy for ParkUntilWakeIdle {
    fn on_idle(&mut self, fails: u32) -> IdleAction {
        if fails >= self.threshold {
            IdleAction::ParkUntilWake
        } else {
            IdleAction::Steal
        }
    }

    fn name(&self) -> &'static str {
        "park-wake"
    }

    fn may_park(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_never_parks() {
        let mut p = SpinIdle;
        for fails in [0, 1, 64, 1_000_000] {
            assert_eq!(p.on_idle(fails), IdleAction::Steal);
        }
        assert!(!p.may_park());
    }

    #[test]
    fn park_after_threshold() {
        let mut p = ParkAfter::new(64, 100);
        assert_eq!(p.on_idle(0), IdleAction::Steal);
        assert_eq!(p.on_idle(63), IdleAction::Steal);
        assert_eq!(p.on_idle(64), IdleAction::Park(100));
        assert_eq!(p.on_idle(500), IdleAction::Park(100));
        assert!(p.may_park());
    }

    #[test]
    fn park_until_wake_after_threshold() {
        let mut p = ParkUntilWakeIdle::new(8);
        assert_eq!(p.on_idle(0), IdleAction::Steal);
        assert_eq!(p.on_idle(7), IdleAction::Steal);
        assert_eq!(p.on_idle(8), IdleAction::ParkUntilWake);
        assert_eq!(p.on_idle(1_000), IdleAction::ParkUntilWake);
        assert!(p.may_park());
    }

    /// The two legacy kinds keep their labels (policy goldens pin them);
    /// the untimed successor gets its own.
    #[test]
    fn labels_are_stable() {
        assert_eq!(IdleKind::Spin.label(), "spin");
        assert_eq!(
            IdleKind::ParkAfter {
                threshold: 64,
                park_len: 100
            }
            .label(),
            "park"
        );
        assert_eq!(
            IdleKind::ParkUntilWake { threshold: 64 }.label(),
            "park-wake"
        );
        assert_eq!(
            IdleKind::ParkUntilWake { threshold: 64 }.build().name(),
            "park-wake"
        );
    }
}
