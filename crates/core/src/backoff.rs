//! Contention backoff (Figure 3, line 15).
//!
//! The paper's thief yields once before every steal attempt — that is
//! what makes a throw cost at most one quantum of the victim's progress
//! under multiprogramming. The alternatives here explore the engineering
//! space around that point: no backoff at all (maximally aggressive,
//! what you get if line 15 is deleted), truncated exponential backoff
//! with seeded jitter (the classic contention response), and a
//! spin-then-yield hybrid.
//!
//! Anything that spins burns instructions that are **not** milestones,
//! so the simulator only enforces the paper's milestone/throw accounting
//! (Lemma 7's "every quantum contains a milestone") for backoffs where
//! [`ContentionBackoff::may_spin`] is false.

use crate::rng::PolicyRng;

/// What a thief does before its next steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackoffAction {
    /// Go straight to the attempt.
    Proceed,
    /// Yield the processor first (the paper's line 15).
    Yield,
    /// Busy-wait for `n` units (instructions in the simulator,
    /// pause-loop iterations in the runtime), then attempt.
    Spin(u32),
    /// Busy-wait for `n` units, then yield, then attempt.
    SpinThenYield(u32),
}

/// Decides the action taken between steal attempts.
pub trait ContentionBackoff: Send {
    /// Action before the next attempt, given `fails` consecutive
    /// failures to find work since work was last found.
    fn on_fail(&mut self, fails: u32, rng: &mut PolicyRng) -> BackoffAction;

    /// Short identity label, e.g. `"yield"`.
    fn name(&self) -> &'static str;

    /// True if this backoff can emit [`BackoffAction::Spin`] /
    /// [`BackoffAction::SpinThenYield`] — spinning invalidates the
    /// paper's milestone accounting, so surfaces gate those checks on
    /// this.
    fn may_spin(&self) -> bool {
        true
    }
}

/// Cloneable spec for a backoff policy (lives in configs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackoffKind {
    /// Yield before every attempt — the paper's line 15.
    #[default]
    Yield,
    /// No backoff: attempt immediately.
    None,
    /// Truncated exponential spin with seeded jitter:
    /// spin `uniform[1, min(cap, base << fails)]`.
    ExpJitter { base: u32, cap: u32 },
    /// Spin `spin` units for the first `threshold` failures, yield after.
    SpinThenYield { spin: u32, threshold: u32 },
}

impl BackoffKind {
    /// Builds the backoff this spec names.
    pub fn build(self) -> Box<dyn ContentionBackoff> {
        match self {
            BackoffKind::Yield => Box::new(PlainYield),
            BackoffKind::None => Box::new(NoBackoff),
            BackoffKind::ExpJitter { base, cap } => Box::new(ExpJitterBackoff::new(base, cap)),
            BackoffKind::SpinThenYield { spin, threshold } => {
                Box::new(SpinThenYield::new(spin, threshold))
            }
        }
    }

    /// Short identity label.
    pub fn label(self) -> &'static str {
        match self {
            BackoffKind::Yield => "yield",
            BackoffKind::None => "none",
            BackoffKind::ExpJitter { .. } => "exp-jitter",
            BackoffKind::SpinThenYield { .. } => "spin-yield",
        }
    }
}

/// The paper's backoff: yield before every attempt. Consumes no
/// randomness (the yield *target*, under `YieldPolicy::ToRandom`, is the
/// kernel's concern, not the backoff's).
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainYield;

impl ContentionBackoff for PlainYield {
    fn on_fail(&mut self, _fails: u32, _rng: &mut PolicyRng) -> BackoffAction {
        BackoffAction::Yield
    }

    fn name(&self) -> &'static str {
        "yield"
    }

    fn may_spin(&self) -> bool {
        false
    }
}

/// Line 15 deleted: the thief attempts steals back-to-back.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoBackoff;

impl ContentionBackoff for NoBackoff {
    fn on_fail(&mut self, _fails: u32, _rng: &mut PolicyRng) -> BackoffAction {
        BackoffAction::Proceed
    }

    fn name(&self) -> &'static str {
        "none"
    }

    fn may_spin(&self) -> bool {
        false
    }
}

/// Truncated exponential backoff with seeded jitter: after `fails`
/// consecutive failures, spin a uniform number of units in
/// `[1, min(cap, base << fails)]`. The jitter draw comes from the
/// worker's [`PolicyRng`], so runs are reproducible.
#[derive(Debug, Clone, Copy)]
pub struct ExpJitterBackoff {
    base: u32,
    cap: u32,
}

impl ExpJitterBackoff {
    pub fn new(base: u32, cap: u32) -> Self {
        ExpJitterBackoff {
            base: base.max(1),
            cap: cap.max(1),
        }
    }
}

impl Default for ExpJitterBackoff {
    fn default() -> Self {
        ExpJitterBackoff::new(4, 1024)
    }
}

impl ContentionBackoff for ExpJitterBackoff {
    fn on_fail(&mut self, fails: u32, rng: &mut PolicyRng) -> BackoffAction {
        let shift = fails.min(16);
        let ceiling = self.base.saturating_shl(shift).max(1).min(self.cap);
        BackoffAction::Spin(rng.range_inclusive(1, ceiling as u64) as u32)
    }

    fn name(&self) -> &'static str {
        "exp-jitter"
    }
}

/// Spin for a fixed short window on early failures (work may reappear
/// momentarily), degrade to the paper's yield once contention persists.
#[derive(Debug, Clone, Copy)]
pub struct SpinThenYield {
    spin: u32,
    threshold: u32,
}

impl SpinThenYield {
    pub fn new(spin: u32, threshold: u32) -> Self {
        SpinThenYield {
            spin: spin.max(1),
            threshold,
        }
    }
}

impl Default for SpinThenYield {
    fn default() -> Self {
        SpinThenYield::new(8, 3)
    }
}

impl ContentionBackoff for SpinThenYield {
    fn on_fail(&mut self, fails: u32, _rng: &mut PolicyRng) -> BackoffAction {
        if fails <= self.threshold {
            BackoffAction::Spin(self.spin)
        } else {
            BackoffAction::Yield
        }
    }

    fn name(&self) -> &'static str {
        "spin-yield"
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u32 {
    fn saturating_shl(self, shift: u32) -> u32 {
        if shift >= 32 || self.leading_zeros() < shift {
            u32::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_yield_is_the_paper_and_draws_nothing() {
        let mut b = PlainYield;
        let mut rng = PolicyRng::new(1);
        let before = rng.clone();
        for fails in 0..10 {
            assert_eq!(b.on_fail(fails, &mut rng), BackoffAction::Yield);
        }
        assert_eq!(rng, before);
        assert!(!b.may_spin());
    }

    #[test]
    fn no_backoff_always_proceeds() {
        let mut b = NoBackoff;
        let mut rng = PolicyRng::new(1);
        assert_eq!(b.on_fail(100, &mut rng), BackoffAction::Proceed);
        assert!(!b.may_spin());
    }

    #[test]
    fn exp_jitter_grows_then_truncates() {
        let mut b = ExpJitterBackoff::new(2, 64);
        let mut rng = PolicyRng::new(0xB0FF);
        for fails in 0..40 {
            let ceiling = 64.min(2u64 << fails.min(16));
            match b.on_fail(fails, &mut rng) {
                BackoffAction::Spin(n) => {
                    assert!(n >= 1 && n as u64 <= ceiling, "fails={fails} n={n}")
                }
                other => panic!("expected Spin, got {other:?}"),
            }
        }
        assert!(b.may_spin());
    }

    #[test]
    fn exp_jitter_is_seed_deterministic() {
        let mut a = ExpJitterBackoff::default();
        let mut b = ExpJitterBackoff::default();
        let mut ra = PolicyRng::new(77);
        let mut rb = PolicyRng::new(77);
        for fails in 0..32 {
            assert_eq!(a.on_fail(fails % 8, &mut ra), b.on_fail(fails % 8, &mut rb));
        }
    }

    #[test]
    fn spin_then_yield_degrades() {
        let mut b = SpinThenYield::new(8, 3);
        let mut rng = PolicyRng::new(0);
        assert_eq!(b.on_fail(0, &mut rng), BackoffAction::Spin(8));
        assert_eq!(b.on_fail(3, &mut rng), BackoffAction::Spin(8));
        assert_eq!(b.on_fail(4, &mut rng), BackoffAction::Yield);
        assert_eq!(b.on_fail(100, &mut rng), BackoffAction::Yield);
    }

    #[test]
    fn shift_saturates_instead_of_overflowing() {
        assert_eq!(u32::MAX.saturating_shl(1), u32::MAX);
        assert_eq!(1u32.saturating_shl(31), 1 << 31);
        assert_eq!(1u32.saturating_shl(32), u32::MAX);
        assert_eq!(0x8000_0000u32.saturating_shl(1), u32::MAX);
    }
}
