//! The per-worker policy engine and its cloneable spec.

use crate::backoff::{BackoffAction, BackoffKind, ContentionBackoff};
use crate::batch::BatchKind;
use crate::idle::{IdleAction, IdleKind, IdlePolicy};
use crate::inject::{InjectKind, InjectPolicy};
use crate::rng::PolicyRng;
use crate::split::SplitKind;
use crate::tally::StealResult;
use crate::victim::{VictimKind, VictimSelector};

/// One choice per policy axis — the value that lives inside
/// `WsConfig`/`PoolConfig` and gets stamped on telemetry and reports.
///
/// The default is [`PolicySet::paper`]: uniform victim, plain yield,
/// spin idle — exactly Figure 3, so configs that never mention policies
/// behave bit-for-bit as before the policy layer existed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PolicySet {
    /// Who to rob (Figure 3, line 16).
    pub victim: VictimKind,
    /// What to do between failed attempts (Figure 3, line 15).
    pub backoff: BackoffKind,
    /// Whether a persistently idle worker parks.
    pub idle: IdleKind,
    /// How often an idle worker polls the external-submission injector
    /// (runtimes without an injector ignore this axis).
    pub inject: InjectKind,
    /// When a data-parallel computation forks vs. runs sequentially
    /// (runtimes without a data-parallel layer ignore this axis). Read
    /// directly by the runtime's splitter, not via the engine: split
    /// decisions happen inside running jobs, not in the steal loop.
    pub split: SplitKind,
    /// How many tasks one successful cross-pool steal migrates
    /// (runtimes without a federated topology ignore this axis). Read
    /// directly by the runtime's steal path, not via the engine: the
    /// batch size draws no randomness, so the `Single` default keeps
    /// rng streams byte-identical to the one-task scheduler.
    pub batch: BatchKind,
}

impl PolicySet {
    /// The paper's policy: uniform victim + yield + spin idle.
    pub fn paper() -> Self {
        PolicySet::default()
    }

    /// Replaces the victim selector.
    pub fn with_victim(mut self, victim: VictimKind) -> Self {
        self.victim = victim;
        self
    }

    /// Replaces the contention backoff.
    pub fn with_backoff(mut self, backoff: BackoffKind) -> Self {
        self.backoff = backoff;
        self
    }

    /// Replaces the idle policy.
    pub fn with_idle(mut self, idle: IdleKind) -> Self {
        self.idle = idle;
        self
    }

    /// Replaces the injector-poll cadence.
    pub fn with_inject(mut self, inject: InjectKind) -> Self {
        self.inject = inject;
        self
    }

    /// Replaces the split cadence.
    pub fn with_split(mut self, split: SplitKind) -> Self {
        self.split = split;
        self
    }

    /// Replaces the steal batch size.
    pub fn with_batch(mut self, batch: BatchKind) -> Self {
        self.batch = batch;
        self
    }

    /// Stable identity string, `"victim+backoff+idle"` — e.g. the
    /// default is `"uniform+yield+spin"`. Stamped on telemetry
    /// snapshots, `RunReport`s, and experiment JSON. A non-default
    /// injector cadence is appended as a fourth `+` segment, a
    /// non-default split cadence as a fifth, and a non-default steal
    /// batch as a sixth; defaults are omitted so labels (and the golden
    /// regression files that pin them) are unchanged for the three
    /// classic axes.
    pub fn label(&self) -> String {
        let mut s = format!(
            "{}+{}+{}",
            self.victim.label(),
            self.backoff.label(),
            self.idle.label()
        );
        if self.inject != InjectKind::default() {
            s.push('+');
            s.push_str(self.inject.label());
        }
        if self.split != SplitKind::default() {
            s.push('+');
            s.push_str(self.split.label());
        }
        if self.batch != BatchKind::default() {
            s.push('+');
            s.push_str(self.batch.label());
        }
        s
    }

    /// True when the set keeps the paper's milestone accounting valid:
    /// no spinning backoff and no parking. The simulator only enforces
    /// Lemma-7-style "every quantum contains a milestone" checks when
    /// this holds.
    pub fn preserves_milestones(&self) -> bool {
        !self.backoff.build().may_spin() && !self.idle.build().may_park()
    }
}

/// The built, stateful form of a [`PolicySet`]: one per worker/process,
/// owning that worker's [`PolicyRng`] and consecutive-failure counter.
///
/// Protocol, per hunt for work:
///
/// 1. [`idle_action`](PolicyEngine::idle_action) — park or keep hunting;
/// 2. [`backoff_action`](PolicyEngine::backoff_action) — yield/spin/
///    proceed before the attempt;
/// 3. [`begin_scan`](PolicyEngine::begin_scan) once, then
///    [`next_victim`](PolicyEngine::next_victim) per attempt and
///    [`observe`](PolicyEngine::observe) with each attempt's outcome;
/// 4. [`note_work_found`](PolicyEngine::note_work_found) on success,
///    [`note_failed`](PolicyEngine::note_failed) when the whole hunt
///    came up empty.
pub struct PolicyEngine {
    victim: Box<dyn VictimSelector>,
    backoff: Box<dyn ContentionBackoff>,
    idle: Box<dyn IdlePolicy>,
    inject: Box<dyn InjectPolicy>,
    rng: PolicyRng,
    fails: u32,
}

impl PolicyEngine {
    /// Builds the engine for one worker from the shared spec and that
    /// worker's forked rng stream.
    pub fn new(set: &PolicySet, rng: PolicyRng) -> Self {
        PolicyEngine {
            victim: set.victim.build(),
            backoff: set.backoff.build(),
            idle: set.idle.build(),
            inject: set.inject.build(),
            rng,
            fails: 0,
        }
    }

    /// Starts a new scan for victims.
    pub fn begin_scan(&mut self, me: usize, p: usize) {
        self.victim.begin_scan(me, p, &mut self.rng);
    }

    /// The next victim to try.
    pub fn next_victim(&mut self, me: usize, p: usize) -> usize {
        self.victim.next_victim(me, p, &mut self.rng)
    }

    /// Reports an attempt's outcome to the victim selector.
    pub fn observe(&mut self, victim: usize, result: StealResult) {
        self.victim.observe(victim, result);
    }

    /// Feeds the locality hint: the process that enabled the node/job
    /// this worker just executed. Consumes no randomness; selectors
    /// without a locality notion ignore it.
    pub fn note_enabler(&mut self, enabler: usize) {
        self.victim.note_enabler(enabler);
    }

    /// Action before the next steal attempt.
    pub fn backoff_action(&mut self) -> BackoffAction {
        self.backoff.on_fail(self.fails, &mut self.rng)
    }

    /// Whether to keep hunting or park.
    pub fn idle_action(&mut self) -> IdleAction {
        self.idle.on_idle(self.fails)
    }

    /// Whether this hunt iteration should poll the external-submission
    /// injector (runtimes without an injector never call this).
    pub fn injector_due(&mut self) -> bool {
        self.inject.should_poll(self.fails)
    }

    /// A whole hunt found nothing: bump the consecutive-failure count.
    pub fn note_failed(&mut self) {
        self.fails = self.fails.saturating_add(1);
    }

    /// Work was found (popped or stolen): reset the failure count.
    pub fn note_work_found(&mut self) {
        self.fails = 0;
    }

    /// Consecutive failed hunts since work was last found.
    pub fn fails(&self) -> u32 {
        self.fails
    }

    /// A uniform draw of a process other than `me` from this worker's
    /// stream — for decisions outside the victim selector that must
    /// share it (the kernel's `ToRandom` yield target).
    pub fn uniform_other(&mut self, me: usize, p: usize) -> usize {
        self.rng.other_than(me, p)
    }

    /// A Bernoulli draw from this worker's stream against a fixed
    /// 64-bit threshold (`threshold == 0` never fires, `u64::MAX`
    /// virtually always) — the cross-pool steal coin of the federated
    /// topology. Exactly one `next_u64` per call, and never called on a
    /// flat K = 1 topology, so default streams stay byte-identical.
    pub fn coin(&mut self, threshold: u64) -> bool {
        self.rng.next_u64() < threshold
    }

    /// A uniform draw in `[0, n)` from this worker's stream — for
    /// topology decisions outside the victim selector (picking which
    /// remote pool/worker a cross-pool attempt targets).
    pub fn draw_below(&mut self, n: usize) -> usize {
        self.rng.below_usize(n)
    }
}

/// Converts a cross-pool steal probability in `[0, 1]` to the fixed
/// threshold [`PolicyEngine::coin`] compares one `next_u64` draw
/// against.
pub fn coin_threshold(prob: f64) -> u64 {
    let p = prob.clamp(0.0, 1.0);
    if p >= 1.0 {
        u64::MAX
    } else {
        (p * u64::MAX as f64) as u64
    }
}

impl std::fmt::Debug for PolicyEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyEngine")
            .field("victim", &self.victim.name())
            .field("backoff", &self.backoff.name())
            .field("idle", &self.idle.name())
            .field("inject", &self.inject.name())
            .field("fails", &self.fails)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backoff::BackoffAction;
    use crate::idle::IdleAction;

    #[test]
    fn default_set_is_the_paper() {
        let set = PolicySet::paper();
        assert_eq!(set, PolicySet::default());
        assert_eq!(set.label(), "uniform+yield+spin");
        assert!(set.preserves_milestones());
    }

    #[test]
    fn builders_compose_and_label_tracks() {
        let set = PolicySet::paper()
            .with_victim(VictimKind::RoundRobin)
            .with_backoff(BackoffKind::ExpJitter { base: 4, cap: 256 })
            .with_idle(IdleKind::ParkAfter {
                threshold: 8,
                park_len: 50,
            });
        assert_eq!(set.label(), "round-robin+exp-jitter+park");
        assert!(!set.preserves_milestones());
    }

    #[test]
    fn milestone_preservation_requires_both_axes() {
        assert!(!PolicySet::paper()
            .with_backoff(BackoffKind::SpinThenYield {
                spin: 4,
                threshold: 2
            })
            .preserves_milestones());
        assert!(!PolicySet::paper()
            .with_idle(IdleKind::ParkAfter {
                threshold: 64,
                park_len: 100
            })
            .preserves_milestones());
        assert!(PolicySet::paper()
            .with_backoff(BackoffKind::None)
            .preserves_milestones());
    }

    #[test]
    fn engine_protocol_default_matches_inline_stream() {
        // A paper-default engine's victim draws must be exactly the
        // stream an inline `other_than` would produce — the refactor's
        // bit-compatibility hinges on this.
        let mut eng = PolicyEngine::new(&PolicySet::paper(), PolicyRng::new(0xAB));
        let mut reference = PolicyRng::new(0xAB);
        for _ in 0..200 {
            assert_eq!(eng.backoff_action(), BackoffAction::Yield);
            assert_eq!(eng.idle_action(), IdleAction::Steal);
            eng.begin_scan(2, 8);
            let got = eng.next_victim(2, 8);
            assert_eq!(got, reference.other_than(2, 8));
            eng.observe(got, StealResult::Empty);
            eng.note_failed();
        }
        assert_eq!(eng.fails(), 200);
        eng.note_work_found();
        assert_eq!(eng.fails(), 0);
    }

    #[test]
    fn inject_axis_defaults_and_labels() {
        // The default cadence leaves the classic three-axis label
        // untouched (the policy_regression goldens depend on that).
        assert_eq!(PolicySet::paper().label(), "uniform+yield+spin");
        let set = PolicySet::paper().with_inject(InjectKind::EveryN { n: 8 });
        assert_eq!(set.label(), "uniform+yield+spin+inject-nth");
        let mut eng = PolicyEngine::new(&set, PolicyRng::new(1));
        assert!(eng.injector_due()); // fails == 0
        eng.note_failed();
        assert!(!eng.injector_due()); // fails == 1, period 8
        let mut default_eng = PolicyEngine::new(&PolicySet::paper(), PolicyRng::new(1));
        for _ in 0..5 {
            assert!(default_eng.injector_due());
            default_eng.note_failed();
        }
    }

    #[test]
    fn split_axis_defaults_and_labels() {
        use crate::split::SplitKind;
        // The default cadence leaves the classic label untouched.
        assert_eq!(PolicySet::paper().label(), "uniform+yield+spin");
        let set = PolicySet::paper().with_split(SplitKind::EagerGrain { grain: 64 });
        assert_eq!(set.label(), "uniform+yield+spin+split-grain");
        // Fourth and fifth segments compose.
        let set = set.with_inject(InjectKind::Never);
        assert_eq!(set.label(), "uniform+yield+spin+inject-never+split-grain");
    }

    #[test]
    fn batch_axis_defaults_and_labels() {
        use crate::batch::BatchKind;
        // The default batch leaves the classic label untouched (the
        // policy_regression goldens depend on that).
        assert_eq!(PolicySet::paper().label(), "uniform+yield+spin");
        let set = PolicySet::paper().with_batch(BatchKind::Half { cap: 8 });
        assert_eq!(set.label(), "uniform+yield+spin+batch-half");
        // The sixth segment composes after inject and split.
        let set = set
            .with_inject(InjectKind::Never)
            .with_split(SplitKind::Sequential);
        assert_eq!(
            set.label(),
            "uniform+yield+spin+inject-never+split-seq+batch-half"
        );
    }

    #[test]
    fn uniform_other_shares_the_stream() {
        let mut eng = PolicyEngine::new(&PolicySet::paper(), PolicyRng::new(5));
        let mut reference = PolicyRng::new(5);
        for _ in 0..50 {
            assert_eq!(eng.uniform_other(1, 4), reference.other_than(1, 4));
        }
    }
}
