//! The seeded randomness source shared by every policy decision.

use abp_dag::DetRng;

/// The deterministic generator policies draw from.
///
/// A thin newtype over [`abp_dag::DetRng`] (xoshiro256++ seeded through
/// SplitMix64) that fixes the *stream discipline*: each worker/process
/// owns exactly one `PolicyRng`, forked from the config seed by worker
/// index, and every policy draw on that worker comes from it in program
/// order. Two surfaces configured with the same seed and the same
/// [`crate::PolicySet`] therefore see identical random decisions —
/// the property the simulator's determinism tests and the policy-swap
/// regression tests pin down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRng {
    inner: DetRng,
}

impl PolicyRng {
    /// A generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        PolicyRng {
            inner: DetRng::new(seed),
        }
    }

    /// Wraps an existing [`DetRng`] without re-seeding, preserving its
    /// stream position (the surfaces fork per-worker streams from one
    /// seed generator and hand them over here).
    pub fn from_det(inner: DetRng) -> Self {
        PolicyRng { inner }
    }

    /// Derives an independent child generator for stream `stream`.
    pub fn fork(&mut self, stream: u64) -> Self {
        PolicyRng {
            inner: self.inner.fork(stream),
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform integer in `[0, n)` (Lemire rejection; exactly uniform).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.below(n)
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.inner.below_usize(n)
    }

    /// Uniform integer in `[lo, hi]`, inclusive.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.range_inclusive(lo, hi)
    }

    /// Uniform process index in `[0, p)` other than `me` (`me` itself
    /// when `p == 1`) — the paper's line-16 draw, shared so the yield
    /// targets and victim selectors consume the same stream the same way.
    #[inline]
    pub fn other_than(&mut self, me: usize, p: usize) -> usize {
        if p <= 1 {
            return me.min(p.saturating_sub(1));
        }
        let r = self.below_usize(p - 1);
        if r >= me {
            r + 1
        } else {
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_underlying_det_rng() {
        let mut a = PolicyRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_matches_det_fork() {
        let mut a = PolicyRng::new(7);
        let mut b = DetRng::new(7);
        let mut af = a.fork(3);
        let mut bf = b.fork(3);
        assert_eq!(af.next_u64(), bf.next_u64());
    }

    #[test]
    fn other_than_skips_me_and_covers_everyone() {
        let mut rng = PolicyRng::new(5);
        let p = 6;
        let me = 2;
        let mut seen = vec![false; p];
        for _ in 0..1000 {
            let v = rng.other_than(me, p);
            assert!(v < p && v != me);
            seen[v] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), p - 1);
    }

    #[test]
    fn other_than_degenerate_p1() {
        let mut rng = PolicyRng::new(5);
        assert_eq!(rng.other_than(0, 1), 0);
    }
}
