//! Victim selection (Figure 3, line 16).
//!
//! The protocol is scan-oriented so one trait serves both surfaces:
//! a thief calls [`VictimSelector::begin_scan`] once when it starts
//! hunting, then [`VictimSelector::next_victim`] for each attempt of the
//! scan, and [`VictimSelector::observe`] with each attempt's outcome.
//! The simulator's scans are one attempt long (it yields between
//! attempts, per the paper); the `hood` runtime scans all `P − 1` other
//! workers before touching the injector. Under the paper's
//! [`UniformVictim`] both shapes draw exactly one random number per
//! scan, which is what keeps the refactored default byte-identical to
//! the pre-policy-layer code.

use crate::rng::PolicyRng;
use crate::tally::StealResult;

/// Chooses which deque a thief robs.
pub trait VictimSelector: Send {
    /// Starts a new scan for work by worker `me` of `p`.
    fn begin_scan(&mut self, me: usize, p: usize, rng: &mut PolicyRng);

    /// The next victim to try (never `me`, except in the degenerate
    /// `p == 1` case where there is nobody else).
    fn next_victim(&mut self, me: usize, p: usize, rng: &mut PolicyRng) -> usize;

    /// Feedback after an attempt on `victim` completed.
    fn observe(&mut self, _victim: usize, _result: StealResult) {}

    /// Locality hint: the surface learned that the node/job it just
    /// executed was *enabled* by `enabler` (the process that executed
    /// its enabling-tree parent — the cache model's deviation signal).
    /// Selectors that don't exploit locality ignore it; it must never
    /// consume randomness, so feeding the hint cannot perturb the
    /// byte-identical default streams.
    fn note_enabler(&mut self, _enabler: usize) {}

    /// Short identity label, e.g. `"uniform"`.
    fn name(&self) -> &'static str;
}

/// Cloneable spec for a victim selector (lives in configs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimKind {
    /// Uniformly random victim — the paper's line 16.
    #[default]
    Uniform,
    /// Deterministic round-robin cursor, no randomness.
    RoundRobin,
    /// Leapfrog/affinity: return to the last victim that yielded work.
    LastVictim,
    /// Locality-aware: rob the process that last *enabled* work this
    /// thief executed (fed by the cache model's deviation signal).
    LastEnabler,
}

impl VictimKind {
    /// Builds the selector this spec names.
    pub fn build(self) -> Box<dyn VictimSelector> {
        match self {
            VictimKind::Uniform => Box::new(UniformVictim::new()),
            VictimKind::RoundRobin => Box::new(RoundRobinVictim::new()),
            VictimKind::LastVictim => Box::new(LastVictim::new()),
            VictimKind::LastEnabler => Box::new(LastEnabler::new()),
        }
    }

    /// Short identity label.
    pub fn label(self) -> &'static str {
        match self {
            VictimKind::Uniform => "uniform",
            VictimKind::RoundRobin => "round-robin",
            VictimKind::LastVictim => "last-victim",
            VictimKind::LastEnabler => "last-enabler",
        }
    }
}

/// The paper's uniformly random victim.
///
/// One draw per scan: `begin_scan` picks a uniform starting point among
/// the `p − 1` others, and successive `next_victim` calls walk cyclically
/// from it. A one-attempt scan is therefore exactly the paper's uniform
/// draw; a `P − 1`-attempt scan visits every other worker once, starting
/// uniformly at random (what `hood` always did).
#[derive(Debug, Clone, Default)]
pub struct UniformVictim {
    start: usize,
    step: usize,
}

impl UniformVictim {
    pub fn new() -> Self {
        Self::default()
    }
}

impl VictimSelector for UniformVictim {
    fn begin_scan(&mut self, _me: usize, p: usize, rng: &mut PolicyRng) {
        self.step = 0;
        self.start = if p > 1 { rng.below_usize(p - 1) } else { 0 };
    }

    fn next_victim(&mut self, me: usize, p: usize, _rng: &mut PolicyRng) -> usize {
        if p <= 1 {
            return 0;
        }
        let mut v = (self.start + self.step) % (p - 1);
        self.step += 1;
        if v >= me {
            v += 1;
        }
        v
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Round-robin victim selection: a persistent cursor that cycles through
/// the other workers in index order, consuming no randomness. The
/// degenerate end of the design space — cheapest possible selection, and
/// the natural baseline against which the paper's uniform choice is
/// measured (its analysis *needs* the uniformity; round-robin loses the
/// per-throw success probability argument of Lemma 7).
#[derive(Debug, Clone, Default)]
pub struct RoundRobinVictim {
    cursor: usize,
}

impl RoundRobinVictim {
    pub fn new() -> Self {
        Self::default()
    }
}

impl VictimSelector for RoundRobinVictim {
    fn begin_scan(&mut self, _me: usize, _p: usize, _rng: &mut PolicyRng) {}

    fn next_victim(&mut self, me: usize, p: usize, _rng: &mut PolicyRng) -> usize {
        if p <= 1 {
            return 0;
        }
        loop {
            self.cursor = (self.cursor + 1) % p;
            if self.cursor != me {
                return self.cursor;
            }
        }
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Leapfrog/affinity selection: remember the last victim that actually
/// yielded work and rob it first next time (its deque plausibly still
/// holds related work — the localized-stealing intuition of Suksompong
/// et al.). Falls back to a fresh uniform draw when there is no
/// remembered victim or the remembered one came up empty.
#[derive(Debug, Clone, Default)]
pub struct LastVictim {
    last: Option<usize>,
    fresh_scan: bool,
}

impl LastVictim {
    pub fn new() -> Self {
        Self::default()
    }
}

impl VictimSelector for LastVictim {
    fn begin_scan(&mut self, _me: usize, _p: usize, _rng: &mut PolicyRng) {
        self.fresh_scan = true;
    }

    fn next_victim(&mut self, me: usize, p: usize, rng: &mut PolicyRng) -> usize {
        if p <= 1 {
            return 0;
        }
        if self.fresh_scan {
            self.fresh_scan = false;
            if let Some(v) = self.last {
                if v != me && v < p {
                    return v;
                }
            }
        }
        rng.other_than(me, p)
    }

    fn observe(&mut self, victim: usize, result: StealResult) {
        match result {
            StealResult::Hit => self.last = Some(victim),
            _ => {
                if self.last == Some(victim) {
                    self.last = None;
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "last-victim"
    }
}

/// Locality-aware selection driven by the enabling tree: rob the process
/// that executed the enabling-tree parent of the node this thief last
/// ran. The Gu/Napier/Sun cache bound charges extra misses per
/// *deviation* (a node run away from its designated parent's process),
/// so the process that enabled our current work is exactly where the
/// adjacent, cache-warm nodes live. The surface feeds the hint through
/// [`VictimSelector::note_enabler`] (the simulator derives it from the
/// PR-8 cache model's `executed_on` table); scans with no hint — or
/// whose hinted victim came up empty — fall back to the paper's uniform
/// draw, so the ABP throw analysis still covers the fallback path.
#[derive(Debug, Clone, Default)]
pub struct LastEnabler {
    enabler: Option<usize>,
    fresh_scan: bool,
}

impl LastEnabler {
    pub fn new() -> Self {
        Self::default()
    }
}

impl VictimSelector for LastEnabler {
    fn begin_scan(&mut self, _me: usize, _p: usize, _rng: &mut PolicyRng) {
        self.fresh_scan = true;
    }

    fn next_victim(&mut self, me: usize, p: usize, rng: &mut PolicyRng) -> usize {
        if p <= 1 {
            return 0;
        }
        if self.fresh_scan {
            self.fresh_scan = false;
            if let Some(v) = self.enabler {
                if v != me && v < p {
                    return v;
                }
            }
        }
        rng.other_than(me, p)
    }

    fn observe(&mut self, victim: usize, result: StealResult) {
        // Keep hammering an enabler only while it yields; an empty or
        // lost race forgets the hint so we return to uniform hunting.
        if !result.is_hit() && self.enabler == Some(victim) {
            self.enabler = None;
        }
    }

    fn note_enabler(&mut self, enabler: usize) {
        self.enabler = Some(enabler);
    }

    fn name(&self) -> &'static str {
        "last-enabler"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-attempt scans of `UniformVictim` reproduce the exact stream of
    /// the paper's inline draw (`below_usize(p - 1)` plus skip-self).
    #[test]
    fn uniform_single_attempt_matches_inline_draw() {
        let p = 8;
        let me = 3;
        let mut sel = UniformVictim::new();
        let mut rng = PolicyRng::new(1234);
        let mut reference = PolicyRng::new(1234);
        for _ in 0..500 {
            sel.begin_scan(me, p, &mut rng);
            let got = sel.next_victim(me, p, &mut rng);
            let want = reference.other_than(me, p);
            assert_eq!(got, want);
        }
    }

    /// A full scan visits every other worker exactly once.
    #[test]
    fn uniform_full_scan_is_a_permutation_of_others() {
        let p = 8;
        let me = 5;
        let mut sel = UniformVictim::new();
        let mut rng = PolicyRng::new(9);
        for _ in 0..50 {
            sel.begin_scan(me, p, &mut rng);
            let mut seen = vec![false; p];
            for _ in 0..p - 1 {
                let v = sel.next_victim(me, p, &mut rng);
                assert!(v < p && v != me);
                assert!(!seen[v], "victim {v} visited twice in one scan");
                seen[v] = true;
            }
        }
    }

    /// Chi-square-style uniformity smoke test for the default selector:
    /// over a long seeded run, the victim histogram stays within a
    /// generous bound of uniform (99.9th percentile of χ²₆ ≈ 22.5).
    #[test]
    fn uniform_victims_pass_chi_square_smoke() {
        let p = 8;
        let me = 0;
        let trials = 40_000u64;
        let mut sel = UniformVictim::new();
        let mut rng = PolicyRng::new(0x5EED);
        let mut counts = vec![0u64; p];
        for _ in 0..trials {
            sel.begin_scan(me, p, &mut rng);
            counts[sel.next_victim(me, p, &mut rng)] += 1;
        }
        assert_eq!(counts[me], 0);
        let expect = trials as f64 / (p - 1) as f64;
        let chi: f64 = counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != me)
            .map(|(_, &c)| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        assert!(chi < 22.5, "uniform victims suspicious: chi² = {chi:.2}");
    }

    #[test]
    fn round_robin_cycles_without_randomness() {
        let p = 4;
        let me = 1;
        let mut sel = RoundRobinVictim::new();
        let mut rng = PolicyRng::new(0);
        let before = rng.clone();
        let seq: Vec<usize> = (0..6).map(|_| sel.next_victim(me, p, &mut rng)).collect();
        assert_eq!(seq, vec![2, 3, 0, 2, 3, 0]);
        assert_eq!(rng, before, "round-robin must not consume randomness");
    }

    #[test]
    fn last_victim_leapfrogs_on_hit_and_forgets_on_miss() {
        let p = 6;
        let me = 0;
        let mut sel = LastVictim::new();
        let mut rng = PolicyRng::new(3);
        sel.begin_scan(me, p, &mut rng);
        let v = sel.next_victim(me, p, &mut rng);
        sel.observe(v, StealResult::Hit);
        // Next scan returns straight to the same victim, no draw.
        let before = rng.clone();
        sel.begin_scan(me, p, &mut rng);
        assert_eq!(sel.next_victim(me, p, &mut rng), v);
        assert_eq!(rng, before);
        // A miss forgets it; the next scan draws fresh.
        sel.observe(v, StealResult::Empty);
        sel.begin_scan(me, p, &mut rng);
        let w = sel.next_victim(me, p, &mut rng);
        assert!(w != me && w < p);
    }

    #[test]
    fn last_enabler_follows_hints_and_forgets_on_miss() {
        let p = 6;
        let me = 0;
        let mut sel = LastEnabler::new();
        let mut rng = PolicyRng::new(7);
        // With a hint, a fresh scan robs the enabler without drawing.
        sel.note_enabler(4);
        let before = rng.clone();
        sel.begin_scan(me, p, &mut rng);
        assert_eq!(sel.next_victim(me, p, &mut rng), 4);
        assert_eq!(rng, before, "hinted attempt must not consume randomness");
        // A hit keeps the hint alive for the next scan.
        sel.observe(4, StealResult::Hit);
        sel.begin_scan(me, p, &mut rng);
        assert_eq!(sel.next_victim(me, p, &mut rng), 4);
        // An empty forgets it; the next scan draws uniform.
        sel.observe(4, StealResult::Empty);
        sel.begin_scan(me, p, &mut rng);
        let w = sel.next_victim(me, p, &mut rng);
        assert!(w != me && w < p);
        // A self or out-of-range hint is ignored on the next scan.
        sel.note_enabler(me);
        sel.begin_scan(me, p, &mut rng);
        let v = sel.next_victim(me, p, &mut rng);
        assert!(v != me && v < p);
    }

    #[test]
    fn degenerate_single_process() {
        let mut rng = PolicyRng::new(1);
        for mut sel in [
            Box::new(UniformVictim::new()) as Box<dyn VictimSelector>,
            VictimKind::RoundRobin.build(),
            VictimKind::LastVictim.build(),
            VictimKind::LastEnabler.build(),
        ] {
            sel.begin_scan(0, 1, &mut rng);
            assert_eq!(sel.next_victim(0, 1, &mut rng), 0);
        }
    }
}
