//! Injector-poll cadence — when an idle worker checks the external
//! front door.
//!
//! The paper's steal loop (Figure 3) only ever looks at other workers'
//! deques; an external-submission injector adds a second place work can
//! appear. *How often* a work-less worker polls that injector is a
//! policy decision with the same flavor as victim selection or backoff:
//! poll too eagerly and P workers hammer the shard locks; poll too
//! lazily and inject-to-start latency grows. This module makes the
//! cadence a fourth [`crate::PolicySet`] axis so it can be ablated like
//! the other three.
//!
//! Crucially, an injector poll is a *bounded* extra probe inside an
//! already-unbounded hunt for work — it never blocks (the sharded
//! injector uses `try_lock` and gives up), so the non-blocking property
//! the paper's deque provides is preserved: a worker always completes
//! its hunt iteration in a bounded number of its own steps regardless of
//! what other clients or workers are doing.

/// What to do with an injector-poll opportunity, given the worker's
/// consecutive-failure count.
pub trait InjectPolicy: Send {
    /// True when the worker should poll the injector on this hunt
    /// iteration. `fails` is the consecutive-failure count maintained by
    /// the engine (reset on any found work).
    fn should_poll(&mut self, fails: u32) -> bool;

    /// Short stable name for labels and debugging.
    fn name(&self) -> &'static str;
}

/// Poll the injector once per victim scan — the default. One bounded
/// extra probe per hunt keeps inject-to-start latency within one scan
/// length without adding contention proportional to P.
#[derive(Debug, Clone, Copy, Default)]
pub struct EveryScan;

impl InjectPolicy for EveryScan {
    fn should_poll(&mut self, _fails: u32) -> bool {
        true
    }
    fn name(&self) -> &'static str {
        "inject-scan"
    }
}

/// Poll only on every `n`-th consecutive failed hunt (and always on the
/// first). Trades inject latency for less shard traffic under heavy
/// steal churn.
#[derive(Debug, Clone, Copy)]
pub struct EveryN {
    n: u32,
}

impl EveryN {
    /// `n` is clamped to at least 1.
    pub fn new(n: u32) -> Self {
        EveryN { n: n.max(1) }
    }
}

impl InjectPolicy for EveryN {
    fn should_poll(&mut self, fails: u32) -> bool {
        fails.is_multiple_of(self.n)
    }
    fn name(&self) -> &'static str {
        "inject-nth"
    }
}

/// Never poll — the pre-injector behavior, for ablation. External
/// submissions are then only picked up by the explicit drain points
/// (park wake-up and shutdown), not the steal loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverInject;

impl InjectPolicy for NeverInject {
    fn should_poll(&mut self, _fails: u32) -> bool {
        false
    }
    fn name(&self) -> &'static str {
        "inject-never"
    }
}

/// Cloneable spec for the injector-poll cadence, the fourth
/// [`crate::PolicySet`] axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectKind {
    /// Once per victim scan (the default).
    #[default]
    EveryScan,
    /// Every `n`-th consecutive failed hunt.
    EveryN {
        /// Poll period in failed hunts (≥ 1).
        n: u32,
    },
    /// Never from the steal loop.
    Never,
}

impl InjectKind {
    /// Builds the boxed policy.
    pub fn build(&self) -> Box<dyn InjectPolicy> {
        match *self {
            InjectKind::EveryScan => Box::new(EveryScan),
            InjectKind::EveryN { n } => Box::new(EveryN::new(n)),
            InjectKind::Never => Box::new(NeverInject),
        }
    }

    /// Short stable label for policy identity strings.
    pub fn label(&self) -> &'static str {
        match self {
            InjectKind::EveryScan => "inject-scan",
            InjectKind::EveryN { .. } => "inject-nth",
            InjectKind::Never => "inject-never",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scan_always_polls() {
        let mut p = InjectKind::EveryScan.build();
        for fails in 0..10 {
            assert!(p.should_poll(fails));
        }
        assert_eq!(p.name(), "inject-scan");
    }

    #[test]
    fn every_n_polls_on_period() {
        let mut p = InjectKind::EveryN { n: 4 }.build();
        let got: Vec<bool> = (0..9).map(|f| p.should_poll(f)).collect();
        assert_eq!(
            got,
            vec![true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn every_n_clamps_zero_to_one() {
        let mut p = InjectKind::EveryN { n: 0 }.build();
        assert!(p.should_poll(0));
        assert!(p.should_poll(1));
    }

    #[test]
    fn never_never_polls() {
        let mut p = InjectKind::Never.build();
        assert!(!p.should_poll(0));
        assert!(!p.should_poll(100));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(InjectKind::EveryScan.label(), "inject-scan");
        assert_eq!(InjectKind::EveryN { n: 2 }.label(), "inject-nth");
        assert_eq!(InjectKind::Never.label(), "inject-never");
        assert_eq!(InjectKind::default(), InjectKind::EveryScan);
    }
}
