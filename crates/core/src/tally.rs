//! Shared steal-attempt accounting.
//!
//! Both surfaces historically counted attempts and outcomes with their
//! own ad-hoc branches, which is exactly where copy-paste drift crept in
//! (the simulator did not even track aborts and empties separately).
//! [`StealTally`] is the one place the counting order lives: every
//! completed `popTop` records exactly one [`StealResult`], so the
//! identity `attempts == hits + aborts + empties + injects + duplicates`
//! holds by construction and both surfaces assert it. `injects` counts successful
//! grabs from the external-submission injector (a fourth place an
//! attempt can land work, added with the `hood` front door); an injector
//! poll that finds nothing records [`StealResult::Empty`], so surfaces
//! without an injector keep the classic three-way identity with
//! `injects == 0`. `duplicates` counts extraction attempts that lost a
//! multiplicity once-guard race ([`StealResult::Duplicate`]) — only the
//! fence-free deque backend ever produces them, so every exact backend
//! carries the identity with a structurally-zero `duplicates` term (and
//! asserts the zero at shutdown).
//!
//! With the pool-federation topology, hits additionally split by
//! *locality*: `remote_hits` counts hits landed on a victim outside the
//! thief's pool, so `hits == local_hits() + remote_hits` without
//! touching the five-way identity. A flat (K = 1) surface never records
//! a remote hit, so the split carries a structural zero there — asserted
//! at shutdown just like `duplicates`.
//!
//! Batched steals add a second outside-the-identity axis: a grab that
//! claims `n` tasks under one synchronization episode records `n`
//! attempts and `n` hits (tasks are still the unit of the five-way
//! identity) plus one `batch_steals` increment and `batched_tasks += n`.
//! Under the default `BatchKind::Single` both stay structurally zero —
//! asserted at shutdown like the other structural zeros.

/// Outcome of one completed steal attempt (`popTop` against a victim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StealResult {
    /// The attempt returned a job/node.
    Hit,
    /// The attempt lost a `cas` race (§3.2's ABORT).
    Abort,
    /// The victim's deque was empty.
    Empty,
    /// The attempt raced an extraction of the same item and lost its
    /// once-guard (fence-free multiplicity backend only).
    Duplicate,
}

impl StealResult {
    /// True for [`StealResult::Hit`].
    pub fn is_hit(self) -> bool {
        self == StealResult::Hit
    }
}

/// Counters over completed steal attempts, one increment per attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealTally {
    /// Completed `popTop` invocations.
    pub attempts: u64,
    /// Attempts that returned a job.
    pub hits: u64,
    /// Attempts that lost a `cas` race.
    pub aborts: u64,
    /// Attempts that found the victim empty.
    pub empties: u64,
    /// Attempts that grabbed a job from the external-submission
    /// injector rather than a victim's deque.
    pub injects: u64,
    /// Attempts that lost a multiplicity once-guard race (fence-free
    /// backend only; structurally zero on exact backends).
    pub duplicates: u64,
    /// Hits whose victim lives in a different pool than the thief
    /// (sub-count of `hits`, outside the identity; structurally zero on
    /// a flat K = 1 topology).
    pub remote_hits: u64,
    /// Multi-task grabs: steal episodes that claimed ≥ 2 tasks under
    /// one synchronization round-trip (outside the identity;
    /// structurally zero under `BatchKind::Single`).
    pub batch_steals: u64,
    /// Tasks moved by those multi-task grabs, the first kept task
    /// included (outside the identity; structurally zero under
    /// `BatchKind::Single`).
    pub batched_tasks: u64,
}

impl StealTally {
    /// Records one completed attempt under exactly one outcome.
    #[inline]
    pub fn record(&mut self, result: StealResult) {
        self.attempts += 1;
        match result {
            StealResult::Hit => self.hits += 1,
            StealResult::Abort => self.aborts += 1,
            StealResult::Empty => self.empties += 1,
            StealResult::Duplicate => self.duplicates += 1,
        }
    }

    /// Records one completed attempt like [`StealTally::record`], also
    /// noting whether the victim lives outside the thief's pool. Only a
    /// [`StealResult::Hit`] contributes to `remote_hits`; misses carry
    /// no locality.
    #[inline]
    pub fn record_located(&mut self, result: StealResult, remote: bool) {
        self.record(result);
        if remote && result.is_hit() {
            self.remote_hits += 1;
        }
    }

    /// Hits whose victim shared the thief's pool.
    pub fn local_hits(&self) -> u64 {
        self.hits - self.remote_hits
    }

    /// The locality split invariant: `remote_hits` never exceeds `hits`.
    pub fn locality_consistent(&self) -> bool {
        self.remote_hits <= self.hits
    }

    /// Records one batched grab that claimed `n` tasks (n ≥ 2) under a
    /// single synchronization episode. The per-task `record`/
    /// `record_located` calls still happen once per task — this only
    /// bumps the outside-the-identity batch axis, mirroring how
    /// `remote_hits` rides alongside `hits`.
    #[inline]
    pub fn record_batch(&mut self, n: u64) {
        debug_assert!(n >= 2, "a batch is a multi-task grab");
        self.batch_steals += 1;
        self.batched_tasks += n;
    }

    /// The batch split invariant: every batched task came from some
    /// hit, and every batch moved at least two tasks.
    pub fn batch_consistent(&self) -> bool {
        self.batched_tasks <= self.hits && self.batched_tasks >= 2 * self.batch_steals
    }

    /// Records one completed injector poll that found a job. (A poll
    /// that finds the injector empty is recorded as
    /// [`StealResult::Empty`] via [`StealTally::record`].)
    #[inline]
    pub fn record_inject(&mut self) {
        self.attempts += 1;
        self.injects += 1;
    }

    /// The accounting identity every surface asserts:
    /// `attempts == hits + aborts + empties + injects + duplicates`.
    pub fn balanced(&self) -> bool {
        self.attempts == self.hits + self.aborts + self.empties + self.injects + self.duplicates
    }

    /// Adds another tally into this one (aggregating workers).
    pub fn merge(&mut self, other: &StealTally) {
        self.attempts += other.attempts;
        self.hits += other.hits;
        self.aborts += other.aborts;
        self.empties += other.empties;
        self.injects += other.injects;
        self.duplicates += other.duplicates;
        self.remote_hits += other.remote_hits;
        self.batch_steals += other.batch_steals;
        self.batched_tasks += other.batched_tasks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_holds_under_any_mix() {
        let mut t = StealTally::default();
        for r in [
            StealResult::Hit,
            StealResult::Abort,
            StealResult::Empty,
            StealResult::Empty,
            StealResult::Hit,
        ] {
            t.record(r);
            assert!(t.balanced());
        }
        assert_eq!(t.attempts, 5);
        assert_eq!(t.hits, 2);
        assert_eq!(t.aborts, 1);
        assert_eq!(t.empties, 2);
    }

    #[test]
    fn merge_preserves_identity() {
        let mut a = StealTally::default();
        a.record(StealResult::Hit);
        let mut b = StealTally::default();
        b.record(StealResult::Empty);
        b.record(StealResult::Abort);
        a.merge(&b);
        assert!(a.balanced());
        assert_eq!(a.attempts, 3);
    }

    #[test]
    fn injects_extend_the_identity() {
        let mut t = StealTally::default();
        t.record(StealResult::Hit);
        t.record_inject();
        t.record(StealResult::Empty);
        t.record_inject();
        assert!(t.balanced());
        assert_eq!(t.attempts, 4);
        assert_eq!(t.injects, 2);
        // Merging carries injects.
        let mut sum = StealTally::default();
        sum.merge(&t);
        sum.merge(&t);
        assert!(sum.balanced());
        assert_eq!(sum.injects, 4);
    }

    #[test]
    fn duplicates_extend_the_identity_with_a_zero_term_when_absent() {
        // An exact backend's tally: duplicates stays structurally zero.
        let mut exact = StealTally::default();
        exact.record(StealResult::Hit);
        exact.record(StealResult::Abort);
        assert!(exact.balanced());
        assert_eq!(exact.duplicates, 0);
        // A fence-free tally: duplicates participate in the identity.
        let mut ff = StealTally::default();
        ff.record(StealResult::Hit);
        ff.record(StealResult::Duplicate);
        ff.record(StealResult::Empty);
        assert!(ff.balanced());
        assert_eq!(ff.duplicates, 1);
        exact.merge(&ff);
        assert!(exact.balanced());
        assert_eq!(exact.duplicates, 1);
    }

    #[test]
    fn batch_counters_ride_outside_the_identity() {
        // A 3-task batched grab: three per-task records plus one batch
        // record. The five-way identity and locality split never move.
        let mut t = StealTally::default();
        for _ in 0..3 {
            t.record_located(StealResult::Hit, true);
        }
        t.record_batch(3);
        assert!(t.balanced());
        assert!(t.locality_consistent());
        assert!(t.batch_consistent());
        assert_eq!(t.attempts, 3);
        assert_eq!(t.hits, 3);
        assert_eq!(t.batch_steals, 1);
        assert_eq!(t.batched_tasks, 3);
        // A single-steal tally keeps the structural zeros.
        let mut single = StealTally::default();
        single.record(StealResult::Hit);
        assert_eq!(single.batch_steals, 0);
        assert_eq!(single.batched_tasks, 0);
        assert!(single.batch_consistent());
        // Merge carries the batch axis.
        single.merge(&t);
        assert!(single.balanced());
        assert!(single.batch_consistent());
        assert_eq!(single.batch_steals, 1);
        assert_eq!(single.batched_tasks, 3);
        // More batched tasks than hits is inconsistent.
        let mut bogus = StealTally::default();
        bogus.record(StealResult::Hit);
        bogus.batch_steals = 1;
        bogus.batched_tasks = 2;
        assert!(!bogus.batch_consistent());
    }

    #[test]
    fn remote_hits_split_rides_outside_the_identity() {
        let mut t = StealTally::default();
        t.record_located(StealResult::Hit, false);
        t.record_located(StealResult::Hit, true);
        t.record_located(StealResult::Empty, true); // misses carry no locality
        t.record_located(StealResult::Abort, true);
        assert!(t.balanced());
        assert!(t.locality_consistent());
        assert_eq!(t.hits, 2);
        assert_eq!(t.remote_hits, 1);
        assert_eq!(t.local_hits(), 1);
        // A flat surface that only ever calls `record` keeps the
        // structural zero.
        let mut flat = StealTally::default();
        flat.record(StealResult::Hit);
        assert_eq!(flat.remote_hits, 0);
        // Merge carries the split.
        flat.merge(&t);
        assert!(flat.balanced());
        assert_eq!(flat.remote_hits, 1);
        assert_eq!(flat.local_hits(), 2);
    }
}
