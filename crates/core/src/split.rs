//! Split cadence — how a data-parallel computation decides between
//! forking and running sequentially.
//!
//! The paper's scheduler makes *spawned* work cheap to balance (idle
//! processors steal from the top of busy deques), but it cannot make
//! spawning itself free: every fork is a deque push, a possible wake,
//! and a reconcile on the way back. A data-parallel layer therefore has
//! its own policy point — *when to stop splitting a range and just run
//! it* — with the same flavor as victim selection or injector cadence,
//! so this module makes it a fifth [`crate::PolicySet`] axis.
//!
//! Unlike the other four axes this one is consulted from the *job* side
//! (inside a running computation), not from the steal loop, so there is
//! no `PolicyEngine` hook: the runtime's splitter reads the [`SplitKind`]
//! directly. The adaptive default splits while the runtime reports idle
//! processors (a relaxed load of the sleep subsystem's packed eventcount
//! word) plus a small depth budget; the eager-grain variant is the
//! classic recurse-to-the-grain baseline kept for ablation, and
//! `Sequential` disables splitting entirely.

/// Cloneable spec for the split cadence, the fifth
/// [`crate::PolicySet`] axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitKind {
    /// Split while idle workers are visible (sleeper hint) after an
    /// initial depth budget of ~`4P` leaves — the default. Sequential at
    /// full speed once every processor is busy.
    #[default]
    Adaptive,
    /// Classic eager recursion down to `grain` elements per leaf,
    /// regardless of idleness — the pre-adaptive behavior, for ablation
    /// and for callers that have tuned an explicit grain.
    EagerGrain {
        /// Maximum leaf length (clamped to ≥ 1).
        grain: usize,
    },
    /// Never split: every range runs sequentially (ablation baseline,
    /// and the behavior outside any pool).
    Sequential,
}

impl SplitKind {
    /// Short stable label for policy identity strings.
    pub fn label(&self) -> &'static str {
        match self {
            SplitKind::Adaptive => "split-adaptive",
            SplitKind::EagerGrain { .. } => "split-grain",
            SplitKind::Sequential => "split-seq",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(SplitKind::Adaptive.label(), "split-adaptive");
        assert_eq!(SplitKind::EagerGrain { grain: 64 }.label(), "split-grain");
        assert_eq!(SplitKind::Sequential.label(), "split-seq");
        assert_eq!(SplitKind::default(), SplitKind::Adaptive);
    }
}
