//! The sharded external-submission injector — the pool's "front door".
//!
//! The paper's runtime is closed: work enters only by being spawned from
//! a worker already inside the pool. A multiprogrammed *server* needs
//! the opposite shape — many non-worker client threads submitting jobs
//! concurrently. This module provides that entry point without
//! reintroducing the central bottleneck the ABP deques were designed to
//! avoid:
//!
//! * The queue is split into `N` cache-line-padded **shards**, each a
//!   mutex-protected **segment queue** (a linked list of fixed-size
//!   slot arrays, so pushes and pops touch one segment and allocation
//!   is amortized over [`SEG_CAP`] submissions).
//! * Each submitting client thread gets a **round-robin cursor** seeded
//!   from a process-wide client id, so concurrent clients start on
//!   different shards and each client spreads its own submissions
//!   across all shards.
//! * Both submitters and polling workers use `try_lock` first and move
//!   to the next shard on contention (counted in
//!   [`Injector::contention`]); a submitter only falls back to a
//!   blocking lock after a full failed scan, and a polling worker
//!   *never* blocks — a contended poll is just a miss. The steal loop
//!   therefore keeps the paper's non-blocking property: a worker's hunt
//!   iteration completes in a bounded number of its own steps no matter
//!   what clients or other workers are doing.
//!
//! Entries carry `(job_word, submit_ns)` so the worker that grabs a job
//! can record the inject-to-start latency histogram. The injector
//! stores raw words, not [`crate::job::JobRef`]s, so it is testable in
//! isolation; the pool owns the conversion on both sides.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Slots per segment. One segment is one allocation; a full segment is
/// retired (dropped) once drained.
pub(crate) const SEG_CAP: usize = 64;

struct Segment {
    read: usize,
    write: usize,
    slots: [(usize, u64); SEG_CAP],
}

impl Segment {
    fn new() -> Box<Segment> {
        Box::new(Segment {
            read: 0,
            write: 0,
            slots: [(0, 0); SEG_CAP],
        })
    }

    fn push(&mut self, v: (usize, u64)) -> bool {
        if self.write == SEG_CAP {
            return false;
        }
        self.slots[self.write] = v;
        self.write += 1;
        true
    }

    fn pop(&mut self) -> Option<(usize, u64)> {
        if self.read == self.write {
            return None;
        }
        let v = self.slots[self.read];
        self.read += 1;
        Some(v)
    }
}

/// FIFO of segments behind one shard's mutex.
#[derive(Default)]
struct SegQueue {
    segs: VecDeque<Box<Segment>>,
}

impl SegQueue {
    fn push(&mut self, v: (usize, u64)) {
        if let Some(seg) = self.segs.back_mut() {
            if seg.push(v) {
                return;
            }
        }
        let mut seg = Segment::new();
        seg.push(v);
        self.segs.push_back(seg);
    }

    fn pop(&mut self) -> Option<(usize, u64)> {
        loop {
            let front = self.segs.front_mut()?;
            if let Some(v) = front.pop() {
                return Some(v);
            }
            // Drained segment: retire it and try the next.
            self.segs.pop_front();
        }
    }
}

#[repr(align(128))]
struct Shard {
    q: Mutex<SegQueue>,
}

/// The sharded front door. One per pool, shared by all submitters and
/// workers.
pub(crate) struct Injector {
    shards: Vec<Shard>,
    mask: usize,
    /// Jobs currently enqueued across all shards (fast empty check for
    /// the steal loop and the park path).
    pending: AtomicUsize,
    /// Jobs ever submitted.
    pub(crate) submissions: AtomicU64,
    /// Shard `try_lock` failures seen by submitters and pollers.
    pub(crate) contention: AtomicU64,
    /// Counted worker polls (hits + misses); shutdown draining is not a
    /// poll.
    pub(crate) polls: AtomicU64,
    /// Jobs grabbed by counted worker polls (a batched poll counts one
    /// poll but `n` hits).
    pub(crate) hits: AtomicU64,
    /// Counted polls resolved by the `pending == 0` early return — no
    /// shard lock was touched. Splitting these from plain misses shows
    /// how often the fast path spares the steal loop a 2N-shard
    /// `try_lock` scan.
    pub(crate) empty_fast: AtomicU64,
}

/// Per-thread round-robin submission cursor: the high part identifies
/// the client (assigned once per thread, spreading clients over
/// shards), the low part advances by one per submission.
fn client_ticket() -> usize {
    static NEXT_CLIENT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static CURSOR: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
    }
    CURSOR.with(|c| {
        let (base, n) = c.get().unwrap_or_else(|| {
            // Weyl-ish spread so client k and client k+1 start far apart.
            let id = NEXT_CLIENT.fetch_add(1, Ordering::Relaxed);
            (id.wrapping_mul(0x9E37_79B9), 0)
        });
        c.set(Some((base, n.wrapping_add(1))));
        base.wrapping_add(n)
    })
}

impl Injector {
    /// `shards` is rounded up to a power of two and clamped to
    /// `[1, 128]`.
    pub(crate) fn new(shards: usize) -> Injector {
        let n = shards.clamp(1, 128).next_power_of_two();
        Injector {
            shards: (0..n)
                .map(|_| Shard {
                    q: Mutex::new(SegQueue::default()),
                })
                .collect(),
            mask: n - 1,
            pending: AtomicUsize::new(0),
            submissions: AtomicU64::new(0),
            contention: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            empty_fast: AtomicU64::new(0),
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Jobs currently enqueued. `Acquire` so a nonzero read happens
    /// after the corresponding push.
    #[inline]
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Submits one job word from the calling thread's shard cursor.
    /// Tries every shard with `try_lock` before blocking on the home
    /// shard, so submitters only ever wait when all `N` shards are
    /// simultaneously held.
    pub(crate) fn push(&self, word: usize, submit_ns: u64) {
        let ticket = client_ticket();
        for i in 0..self.shards.len() {
            let idx = ticket.wrapping_add(i) & self.mask;
            match self.shards[idx].q.try_lock() {
                Ok(mut q) => {
                    q.push((word, submit_ns));
                    self.finish_push(1);
                    drop(q);
                    return;
                }
                Err(_) => {
                    self.contention.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let mut q = self.shards[ticket & self.mask].q.lock().unwrap();
        q.push((word, submit_ns));
        self.finish_push(1);
        drop(q);
    }

    /// Submits a batch under a single shard lock (one lock acquisition
    /// for the whole batch — the point of `spawn_batch`).
    pub(crate) fn push_batch(&self, words: &[usize], submit_ns: u64) {
        if words.is_empty() {
            return;
        }
        let ticket = client_ticket();
        let home = ticket & self.mask;
        let mut q = match self.shards[home].q.try_lock() {
            Ok(q) => q,
            Err(_) => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                self.shards[home].q.lock().unwrap()
            }
        };
        for &w in words {
            q.push((w, submit_ns));
        }
        self.finish_push(words.len());
        drop(q);
    }

    /// Counter updates for `n` just-enqueued jobs. Must run while the
    /// shard lock is still held: a popper can only reach the new items
    /// after the lock drops, so `pending` is always >= the number of
    /// live items and the pop-side `fetch_sub` can never underflow
    /// (`pending` may transiently over-count, never under-count).
    fn finish_push(&self, n: usize) {
        self.submissions.fetch_add(n as u64, Ordering::Relaxed);
        self.pending.fetch_add(n, Ordering::Release);
    }

    /// One counted, non-blocking worker poll: scans all shards from
    /// `start` with `try_lock`; a contended or empty scan is a miss.
    /// Returns `(job_word, submit_ns)`.
    pub(crate) fn poll(&self, start: usize) -> Option<(usize, u64)> {
        self.polls.fetch_add(1, Ordering::Relaxed);
        if self.pending() == 0 {
            self.empty_fast.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        for i in 0..self.shards.len() {
            let idx = start.wrapping_add(i) & self.mask;
            match self.shards[idx].q.try_lock() {
                Ok(mut q) => {
                    if let Some(v) = q.pop() {
                        drop(q);
                        self.pending.fetch_sub(1, Ordering::Release);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(v);
                    }
                }
                Err(_) => {
                    self.contention.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        None
    }

    /// One counted, non-blocking *batched* worker poll: like
    /// [`poll`](Injector::poll), but the first shard that yields jobs is
    /// drained of up to `max` of them under its **single** `try_lock` —
    /// one lock acquisition, one `pending` decrement of the whole batch
    /// size. Each entry keeps its own `submit_ns`, so inject-to-start
    /// latency histograms see every job individually. Counts one poll
    /// and `n` hits; an empty result is a miss.
    pub(crate) fn poll_batch(&self, start: usize, max: usize) -> Vec<(usize, u64)> {
        self.polls.fetch_add(1, Ordering::Relaxed);
        let mut out = Vec::new();
        if self.pending() == 0 {
            self.empty_fast.fetch_add(1, Ordering::Relaxed);
            return out;
        }
        for i in 0..self.shards.len() {
            let idx = start.wrapping_add(i) & self.mask;
            match self.shards[idx].q.try_lock() {
                Ok(mut q) => {
                    while out.len() < max {
                        match q.pop() {
                            Some(v) => out.push(v),
                            None => break,
                        }
                    }
                    if !out.is_empty() {
                        drop(q);
                        self.pending.fetch_sub(out.len(), Ordering::Release);
                        self.hits.fetch_add(out.len() as u64, Ordering::Relaxed);
                        return out;
                    }
                }
                Err(_) => {
                    self.contention.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        out
    }

    /// Uncounted blocking pop, for shutdown draining only: takes every
    /// shard lock in turn, so a `None` really means empty (with respect
    /// to submissions that happened before shutdown).
    pub(crate) fn pop_blocking(&self, start: usize) -> Option<(usize, u64)> {
        for i in 0..self.shards.len() {
            let idx = start.wrapping_add(i) & self.mask;
            if let Some(v) = self.shards[idx].q.lock().unwrap().pop() {
                self.pending.fetch_sub(1, Ordering::Release);
                return Some(v);
            }
        }
        None
    }

    /// Copies the scalar counters into a telemetry snapshot section.
    #[cfg(feature = "telemetry")]
    pub(crate) fn stamp(&self, out: &mut abp_telemetry::InjectorSnapshot) {
        out.shards = self.shards.len() as u64;
        out.submissions = self.submissions.load(Ordering::Relaxed);
        out.contention = self.contention.load(Ordering::Relaxed);
        out.polls = self.polls.load(Ordering::Relaxed);
        out.hits = self.hits.load(Ordering::Relaxed);
        out.empty_fast = self.empty_fast.load(Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(Injector::new(0).shard_count(), 1);
        assert_eq!(Injector::new(3).shard_count(), 4);
        assert_eq!(Injector::new(8).shard_count(), 8);
        assert_eq!(Injector::new(1000).shard_count(), 128);
    }

    #[test]
    fn push_poll_roundtrip_and_counters() {
        let inj = Injector::new(4);
        assert_eq!(inj.poll(0), None); // counted miss on empty
        for w in 1..=10usize {
            inj.push(w, w as u64 * 100);
        }
        assert_eq!(inj.pending(), 10);
        let mut got: Vec<usize> = Vec::new();
        while let Some((w, ns)) = inj.poll(2) {
            assert_eq!(ns, w as u64 * 100);
            got.push(w);
        }
        got.sort_unstable();
        assert_eq!(got, (1..=10).collect::<Vec<_>>());
        assert_eq!(inj.pending(), 0);
        assert_eq!(inj.submissions.load(Ordering::Relaxed), 10);
        assert_eq!(inj.hits.load(Ordering::Relaxed), 10);
        assert_eq!(inj.polls.load(Ordering::Relaxed), 12); // 10 hits + 2 misses
    }

    #[test]
    fn batch_goes_through_one_shard_in_order() {
        let inj = Injector::new(1); // single shard: global FIFO
        inj.push_batch(&[7, 8, 9], 5);
        assert_eq!(inj.pending(), 3);
        assert_eq!(inj.poll(0), Some((7, 5)));
        assert_eq!(inj.poll(0), Some((8, 5)));
        assert_eq!(inj.pop_blocking(0), Some((9, 5)));
        assert_eq!(inj.pop_blocking(0), None);
    }

    #[test]
    fn empty_fast_counts_only_lock_free_misses() {
        let inj = Injector::new(2);
        assert_eq!(inj.poll(0), None);
        assert!(inj.poll_batch(0, 4).is_empty());
        assert_eq!(inj.empty_fast.load(Ordering::Relaxed), 2);
        inj.push(1, 0);
        assert_eq!(inj.poll(0), Some((1, 0)));
        // A hit does not touch the fast-path counter.
        assert_eq!(inj.empty_fast.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn poll_batch_drains_one_shard_under_one_lock() {
        let inj = Injector::new(1); // single shard: global FIFO
        inj.push_batch(&[1, 2, 3, 4, 5], 9);
        let got = inj.poll_batch(0, 3);
        assert_eq!(got, vec![(1, 9), (2, 9), (3, 9)]);
        assert_eq!(inj.pending(), 2);
        // One poll, three hits: batched accounting.
        assert_eq!(inj.polls.load(Ordering::Relaxed), 1);
        assert_eq!(inj.hits.load(Ordering::Relaxed), 3);
        let got = inj.poll_batch(0, 8);
        assert_eq!(got, vec![(4, 9), (5, 9)]);
        assert_eq!(inj.pending(), 0);
        assert!(inj.poll_batch(0, 8).is_empty());
        assert_eq!(inj.empty_fast.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn segments_retire_across_many_pushes() {
        let inj = Injector::new(2);
        let n = SEG_CAP * 5 + 3;
        for w in 0..n {
            inj.push(w + 1, 0);
        }
        let mut seen = 0;
        while inj.pop_blocking(1).is_some() {
            seen += 1;
        }
        assert_eq!(seen, n);
        assert_eq!(inj.pending(), 0);
    }

    #[test]
    fn concurrent_submitters_lose_nothing() {
        let inj = Arc::new(Injector::new(4));
        let clients = 8;
        let per = 500;
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let inj = Arc::clone(&inj);
                std::thread::spawn(move || {
                    for i in 0..per {
                        inj.push(c * per + i + 1, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got = Vec::new();
        while let Some((w, _)) = inj.pop_blocking(0) {
            got.push(w);
        }
        got.sort_unstable();
        assert_eq!(got, (1..=clients * per).collect::<Vec<_>>());
        assert_eq!(
            inj.submissions.load(Ordering::Relaxed),
            (clients * per) as u64
        );
    }
}
