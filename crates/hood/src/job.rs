//! Type-erased units of work.
//!
//! The ABP deque stores single machine words; a job is therefore
//! represented in the deque as a raw pointer to a structure whose first
//! field is a [`JobHeader`] — one word, one indirect call to execute,
//! exactly the paper's "deque of (pointers to) threads".
//!
//! Two concrete job kinds:
//! * [`StackJob`] — lives in the frame of a `join` call; the caller
//!   guarantees (by waiting on the latch) that the frame outlives any
//!   execution;
//! * [`HeapJob`] — boxed, used by `scope::spawn`, freed after execution.

use crate::latch::SpinLatch;
use std::cell::UnsafeCell;
use std::panic::AssertUnwindSafe;

/// First field of every job structure; `execute` receives the pointer to
/// the header and downcasts to the concrete job type.
#[repr(C)]
pub struct JobHeader {
    pub execute: unsafe fn(*const JobHeader),
}

/// A word-sized reference to a job, as stored in deques.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct JobRef(pub *const JobHeader);

unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job.
    ///
    /// # Safety
    ///
    /// The pointer must reference a live job that has not yet been
    /// executed; the job is consumed.
    #[inline]
    pub unsafe fn execute(self) {
        ((*self.0).execute)(self.0)
    }

    /// The word stored in a deque.
    #[inline]
    pub fn to_word(self) -> usize {
        self.0 as usize
    }

    /// Recovers a reference from a deque word.
    #[inline]
    pub fn from_word(w: usize) -> Self {
        JobRef(w as *const JobHeader)
    }
}

/// Outcome of an executed job body: a value or a captured panic payload.
pub enum JobResult<R> {
    Ok(R),
    Panic(Box<dyn std::any::Any + Send>),
}

impl<R> JobResult<R> {
    /// Unwraps the value, resuming the panic on the caller's stack if the
    /// job panicked (so panics propagate across steals, like rayon).
    pub fn into_return_value(self) -> R {
        match self {
            JobResult::Ok(r) => r,
            JobResult::Panic(p) => std::panic::resume_unwind(p),
        }
    }
}

/// A job allocated in the caller's stack frame (the `b` side of a join).
#[repr(C)]
pub struct StackJob<F, R> {
    header: JobHeader,
    f: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<JobResult<R>>>,
    pub latch: SpinLatch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub fn new(f: F) -> Self {
        StackJob {
            header: JobHeader {
                execute: Self::execute_erased,
            },
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch: SpinLatch::new(),
        }
    }

    /// The word-sized handle to push into a deque.
    ///
    /// # Safety
    ///
    /// The caller must keep `self` alive and pinned until the latch is
    /// set (or until it reclaims the job by popping it back un-executed).
    pub unsafe fn as_job_ref(&self) -> JobRef {
        JobRef(&self.header as *const JobHeader)
    }

    unsafe fn execute_erased(header: *const JobHeader) {
        let this = &*(header as *const Self);
        let f = (*this.f.get()).take().expect("job executed twice");
        let result = match std::panic::catch_unwind(AssertUnwindSafe(f)) {
            Ok(r) => JobResult::Ok(r),
            Err(p) => JobResult::Panic(p),
        };
        *this.result.get() = Some(result);
        // The latch release-publishes the result.
        this.latch.set();
    }

    /// Runs the body inline (the caller popped the job back before any
    /// thief got it). Consumes the closure without the latch protocol.
    ///
    /// # Safety
    ///
    /// No other process may hold a [`JobRef`] to this job (it must have
    /// been reclaimed un-stolen), and the body must not have run yet.
    pub unsafe fn run_inline(&self) -> R {
        let f = (*this_f(self)).take().expect("job executed twice");
        f()
    }

    /// Takes the result after the latch is set.
    ///
    /// # Safety
    ///
    /// Callable only after [`StackJob::latch`] reads set (the result cell
    /// is written before the latch release) and at most once.
    pub unsafe fn take_result(&self) -> JobResult<R> {
        (*this_result(self))
            .take()
            .expect("latch set but no result")
    }
}

// Small helpers to keep the unsafe blocks readable.
unsafe fn this_f<F, R>(job: &StackJob<F, R>) -> *mut Option<F> {
    job.f.get()
}
unsafe fn this_result<F, R>(job: &StackJob<F, R>) -> *mut Option<JobResult<R>> {
    job.result.get()
}

/// A heap-allocated fire-and-forget job (used by scoped spawns). The
/// closure is responsible for any completion signaling.
#[repr(C)]
pub struct HeapJob<F> {
    header: JobHeader,
    f: Option<F>,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    /// Boxes the closure and leaks it as a [`JobRef`]; the job frees
    /// itself when executed.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the job is executed exactly once, and —
    /// because `F` carries no `'static` bound — that everything the
    /// closure borrows outlives that execution (scopes and `install`
    /// enforce this by blocking on a latch the job sets).
    pub unsafe fn into_job_ref(f: F) -> JobRef {
        let boxed = Box::new(HeapJob {
            header: JobHeader {
                execute: Self::execute_erased,
            },
            f: Some(f),
        });
        JobRef(Box::into_raw(boxed) as *const JobHeader)
    }

    unsafe fn execute_erased(header: *const JobHeader) {
        let mut boxed = Box::from_raw(header as *mut Self);
        let f = boxed.f.take().expect("heap job executed twice");
        f();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_job_execute_sets_latch_and_result() {
        let job = StackJob::new(|| 21 * 2);
        let r = unsafe { job.as_job_ref() };
        assert!(!job.latch.probe());
        unsafe { r.execute() };
        assert!(job.latch.probe());
        match unsafe { job.take_result() } {
            JobResult::Ok(v) => assert_eq!(v, 42),
            JobResult::Panic(_) => panic!("unexpected panic"),
        }
    }

    #[test]
    fn stack_job_run_inline() {
        let job = StackJob::new(|| "hi".len());
        assert_eq!(unsafe { job.run_inline() }, 2);
        assert!(!job.latch.probe(), "inline run skips the latch");
    }

    #[test]
    fn stack_job_captures_panic() {
        let job = StackJob::new(|| -> u32 { panic!("boom") });
        unsafe { job.as_job_ref().execute() };
        assert!(job.latch.probe());
        match unsafe { job.take_result() } {
            JobResult::Panic(p) => {
                let msg = p.downcast_ref::<&str>().copied().unwrap_or("");
                assert_eq!(msg, "boom");
            }
            JobResult::Ok(_) => panic!("panic was not captured"),
        }
    }

    #[test]
    fn heap_job_runs_and_frees() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let hit = Arc::new(AtomicBool::new(false));
        let h2 = Arc::clone(&hit);
        let job = unsafe {
            HeapJob::into_job_ref(move || {
                h2.store(true, Ordering::SeqCst);
            })
        };
        unsafe { job.execute() };
        assert!(hit.load(Ordering::SeqCst));
    }

    #[test]
    fn job_ref_word_roundtrip() {
        let job = StackJob::new(|| ());
        let r = unsafe { job.as_job_ref() };
        let w = r.to_word();
        assert_eq!(JobRef::from_word(w), r);
    }
}
