//! The adaptive splitter — when a data-parallel range forks and when it
//! runs sequentially.
//!
//! Classic grain recursion forks down to a fixed leaf size no matter
//! what the rest of the pool is doing: on a saturated pool that is pure
//! overhead (every fork is a deque push, a possible wake, and a
//! reconcile), and on an under-loaded pool a mis-tuned grain leaves
//! processors idle. The paper's machinery gives us exactly the signal
//! needed to do better: the sleep subsystem's packed eventcount word
//! counts idle workers, and one `Relaxed` load of it
//! ([`crate::pool::ThreadPool::sleepers_hint`]) is essentially free.
//!
//! [`Splitter`] combines two heuristics, in the spirit of lazy-splitting
//! schedulers (Rito & Paulino, PAPERS.md):
//!
//! 1. **Depth budget** — the first ~`log2(4P)` levels always split, so a
//!    fresh computation fans out to ~`4P` pieces and every processor can
//!    get one even before anyone reports idle. A task that *migrates*
//!    (its splitter observes a different worker index than the one that
//!    created it — i.e. it was stolen) resets the budget: a steal is
//!    direct evidence of an under-loaded pool, so the stolen subtree
//!    fans out again.
//! 2. **Sleeper hint** — once the budget is spent, split only while the
//!    relaxed idle gauge reports workers waiting for work; otherwise run
//!    the whole remaining range sequentially at full speed.
//!
//! Both heuristic inputs are racy and that is fine: a stale hint either
//! skips one fork (costing a scan's worth of parallelism — the next
//! consult sees the sleeper) or forks once into a busy pool (costing one
//! cheap never-stolen `join`, ~16 ns). Neither direction affects
//! correctness, which is what lets the splitter consult the gauge on
//! every recursion step.
//!
//! Every decision is counted on the deciding worker (`par_splits` /
//! `par_seq` in [`crate::stats::PoolStats`]), so experiment DP1 can
//! compare adaptive against eager-grain task counts from the same
//! counters.

use crate::pool::current_worker;
use abp_core::SplitKind;

/// Decides, per recursion step, whether a range of `len` items should
/// fork (`should_split` → `true`) or run sequentially. `Copy` so a
/// `join`'s two closures each inherit the parent's post-decision state.
#[derive(Debug, Clone, Copy)]
pub struct Splitter {
    kind: SplitKind,
    /// Remaining always-split levels (adaptive only).
    budget: u32,
    /// Initial budget, restored when the task migrates to another worker.
    full_budget: u32,
    /// Worker index this splitter state was created (or last reset) on;
    /// `usize::MAX` outside a pool.
    origin: usize,
    /// Floor leaf length: ranges shorter than `2 * min_len` never split.
    min_len: usize,
}

/// Depth budget for a pool of `p` workers: enough always-split levels to
/// produce ~`4P` leaves.
fn budget_for(p: usize) -> u32 {
    (4 * p.max(1)).next_power_of_two().trailing_zeros()
}

impl Splitter {
    /// A splitter honouring the current pool's [`SplitKind`] policy
    /// axis. Outside any pool this is [`Splitter::sequential`]: the
    /// combinators degrade to plain sequential loops.
    pub fn new() -> Splitter {
        match current_worker() {
            Some(w) => Splitter::with_kind(w.split_kind()),
            None => Splitter::sequential(),
        }
    }

    /// A splitter with an explicit cadence, ignoring the pool policy
    /// (used by the legacy explicit-grain helpers and by DP1's
    /// adaptive-vs-eager comparison).
    pub fn with_kind(kind: SplitKind) -> Splitter {
        let (budget, origin) = match current_worker() {
            Some(w) => (budget_for(w.num_procs()), w.index()),
            None => (0, usize::MAX),
        };
        Splitter {
            kind,
            budget,
            full_budget: budget,
            origin,
            min_len: 1,
        }
    }

    /// The classic recurse-to-the-grain cadence.
    pub fn eager(grain: usize) -> Splitter {
        Splitter::with_kind(SplitKind::EagerGrain { grain })
    }

    /// Never splits.
    pub fn sequential() -> Splitter {
        Splitter {
            kind: SplitKind::Sequential,
            budget: 0,
            full_budget: 0,
            origin: usize::MAX,
            min_len: 1,
        }
    }

    /// Sets the floor leaf length (clamped to ≥ 1): ranges shorter than
    /// `2 * min_len` run sequentially unconditionally. Use when one
    /// element is much cheaper than one `join` (~16 ns).
    pub fn with_min_len(mut self, min_len: usize) -> Splitter {
        self.min_len = min_len.max(1);
        self
    }

    /// One split decision for a range of `len` items. Mutates the
    /// budget; callers pass the post-decision splitter (by copy) to both
    /// halves.
    pub fn should_split(&mut self, len: usize) -> bool {
        if len < 2 * self.min_len || len < 2 {
            // Too small to be a real decision: not counted.
            return false;
        }
        let worker = current_worker();
        let split = match self.kind {
            SplitKind::Sequential => false,
            SplitKind::EagerGrain { grain } => len > grain.max(1),
            SplitKind::Adaptive => {
                if let Some(w) = worker {
                    // Stolen-work heuristic: running on a different
                    // worker than the one that made this state means the
                    // task was stolen — evidence of idle capacity.
                    if w.index() != self.origin {
                        self.origin = w.index();
                        self.budget = self.full_budget;
                    }
                    if self.budget > 0 {
                        self.budget -= 1;
                        true
                    } else {
                        w.sleepers_hint() > 0
                    }
                } else {
                    false
                }
            }
        };
        if let Some(w) = worker {
            if split {
                w.note_par_split();
            } else {
                w.note_par_seq();
            }
        }
        split
    }
}

impl Default for Splitter {
    fn default() -> Self {
        Splitter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn budget_scales_with_p() {
        assert_eq!(budget_for(1), 2); // 4 leaves
        assert_eq!(budget_for(2), 3); // 8
        assert_eq!(budget_for(8), 5); // 32
        assert_eq!(budget_for(3), 4); // next_pow2(12) = 16
    }

    #[test]
    fn outside_pool_never_splits() {
        let mut sp = Splitter::new();
        assert!(!sp.should_split(1 << 30));
        let mut sp = Splitter::eager(8);
        // Eager *kind* still needs a pool to execute joins usefully, but
        // the decision itself is pool-independent.
        assert!(sp.should_split(1 << 30));
    }

    #[test]
    fn min_len_floors_leaves() {
        let pool = ThreadPool::new(2);
        pool.install(|| {
            let mut sp = Splitter::eager(1).with_min_len(100);
            assert!(!sp.should_split(199));
            assert!(sp.should_split(200));
        });
    }

    #[test]
    fn adaptive_budget_fans_out_then_defers_to_hint() {
        let pool = ThreadPool::new(2);
        pool.install(|| {
            let mut sp = Splitter::new();
            let levels = budget_for(2);
            for _ in 0..levels {
                assert!(sp.should_split(1 << 20), "budget levels always split");
            }
            // Budget exhausted: the decision now tracks the sleeper
            // hint, which is racy — just check it terminates and that
            // tiny ranges never split.
            assert!(!sp.should_split(1));
        });
        let report = pool.shutdown();
        assert!(report.stats.par_splits >= budget_for(2) as u64);
    }

    #[test]
    fn decisions_are_counted() {
        let pool = ThreadPool::new(1);
        pool.install(|| {
            let mut sp = Splitter::eager(10);
            assert!(sp.should_split(100));
            assert!(!sp.should_split(5));
        });
        let report = pool.shutdown();
        assert_eq!(report.stats.par_splits, 1);
        assert_eq!(report.stats.par_seq, 1);
    }
}
