//! Adaptive parallel unstable sort.
//!
//! Three-way quicksort with a deterministic median-of-three pivot: each
//! level partitions the slice into `< pivot | == pivot | > pivot` and
//! recurses on the outer two in parallel via `join`. The [`Splitter`]
//! decides per level whether the recursion forks or stays sequential —
//! once the pool stops reporting idle workers the remaining sub-ranges
//! are handed to `std`'s `sort_unstable`, so the sequential leaves run
//! at full library speed (pattern-defeating quicksort) rather than
//! hand-rolled loops.

use super::split::Splitter;
use crate::join::join;

/// Sorts the slice, potentially in parallel, honouring the current
/// pool's [`abp_core::SplitKind`] policy. Deterministic pivot choice
/// keeps runs reproducible; outside a pool this is exactly
/// `slice::sort_unstable`.
pub fn par_sort_unstable<T: Ord + Send>(v: &mut [T]) {
    // ~512 elements is where a fork (~16 ns + steal exposure) clearly
    // beats the sequential sort of the leaf.
    sort_with(v, Splitter::new().with_min_len(512));
}

/// Sort with an explicit splitter — the engine behind
/// [`par_sort_unstable`] and the legacy `hood::sort_unstable`.
pub(crate) fn sort_with<T: Ord + Send>(v: &mut [T], mut sp: Splitter) {
    if !sp.should_split(v.len()) {
        v.sort_unstable();
        return;
    }
    // Median-of-three pivot.
    let (a, b, c) = (0, v.len() / 2, v.len() - 1);
    let med = if v[a] < v[b] {
        if v[b] < v[c] {
            b
        } else if v[a] < v[c] {
            c
        } else {
            a
        }
    } else if v[a] < v[c] {
        a
    } else if v[b] < v[c] {
        c
    } else {
        b
    };
    v.swap(med, b);
    // Three-way partition around v[b]'s value via index juggling.
    let (mut lt, mut i, mut gt) = (0usize, 0usize, v.len());
    let mut pivot_at = b;
    while i < gt {
        use std::cmp::Ordering::*;
        match v[i].cmp(&v[pivot_at]) {
            Less => {
                if pivot_at == lt {
                    pivot_at = i;
                }
                v.swap(lt, i);
                lt += 1;
                i += 1;
            }
            Greater => {
                gt -= 1;
                if pivot_at == gt {
                    pivot_at = i;
                }
                v.swap(i, gt);
            }
            Equal => i += 1,
        }
    }
    let (lo, rest) = v.split_at_mut(lt);
    let hi = &mut rest[gt - lt..];
    join(|| sort_with(lo, sp), || sort_with(hi, sp));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use abp_dag::DetRng;

    #[test]
    fn sorts_random_input() {
        let pool = ThreadPool::new(4);
        let mut rng = DetRng::new(7);
        let mut v: Vec<u64> = (0..120_000).map(|_| rng.below(10_000)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        pool.install(|| par_sort_unstable(&mut v));
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_adversarial_shapes() {
        let pool = ThreadPool::new(2);
        pool.install(|| {
            let mut empty: Vec<u8> = vec![];
            par_sort_unstable(&mut empty);
            let mut one = vec![3u8];
            par_sort_unstable(&mut one);
            assert_eq!(one, vec![3]);
            let mut rev: Vec<u32> = (0..30_000).rev().collect();
            par_sort_unstable(&mut rev);
            assert!(rev.windows(2).all(|w| w[0] <= w[1]));
            let mut same = vec![9u16; 20_000];
            par_sort_unstable(&mut same);
            assert!(same.iter().all(|&x| x == 9));
            let mut sorted: Vec<u32> = (0..30_000).collect();
            par_sort_unstable(&mut sorted);
            assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        });
    }

    #[test]
    fn works_outside_pool() {
        let mut v = vec![5u32, 1, 4, 2, 3];
        par_sort_unstable(&mut v);
        assert_eq!(v, vec![1, 2, 3, 4, 5]);
    }
}
