//! `hood::par` — the data-parallel layer: parallel iterator combinators,
//! parallel sort, and a FIFO spawn scope, all scheduled by **adaptive
//! splitting**.
//!
//! ```
//! use hood::par::prelude::*;
//! use hood::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let v: Vec<u64> = (1..=1000).collect();
//! let sum_sq = pool.install(|| v.par_iter().map(|&x| x * x).sum());
//! assert_eq!(sum_sq, 1000 * 1001 * 2001 / 6);
//! ```
//!
//! Everything lowers onto [`crate::join()`](crate::join::join), so the
//! layer inherits the runtime's paper-derived properties — depth-first
//! execution on one process, breadth-first stealing from many, graceful
//! degradation when the kernel revokes processors — and adds one of its
//! own: **how much** a computation forks is decided at run time by the
//! [`Splitter`](split::Splitter), from the sleep subsystem's idle-worker
//! gauge, instead of by a compile-time `grain` guess. See [`split`] for
//! the heuristic and [`iter`] for the combinator architecture.
//!
//! The policy knob is [`abp_core::SplitKind`] (fifth `PolicySet` axis):
//! `Adaptive` (default), `EagerGrain { grain }` (classic
//! recurse-to-the-grain), or `Sequential` (never fork — a debugging /
//! baseline mode).

pub mod iter;
pub mod scope_fifo;
pub mod sort;
pub mod split;

pub use iter::{IndexedParIterator, IntoParIter, ParIter, ParIterMut, ParIterator, ParRange};
pub use scope_fifo::{scope_fifo, ScopeFifo};
pub use sort::par_sort_unstable;
pub use split::Splitter;

/// One-stop import for the combinator surface:
/// `use hood::par::prelude::*;`.
pub mod prelude {
    pub use super::iter::{IndexedParIterator, IntoParIter, ParIterator};
    pub use super::{ParallelSlice, ParallelSliceMut};
}

/// `par_iter()` on shared slices (and `Vec`s, via deref).
pub trait ParallelSlice<T: Sync> {
    /// A parallel iterator yielding `&T`.
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// `par_iter_mut()` on mutable slices (and `Vec`s, via deref).
pub trait ParallelSliceMut<T: Send> {
    /// A parallel iterator yielding `&mut T`.
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut { slice: self }
    }
}
