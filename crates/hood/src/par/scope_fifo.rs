//! A spawn scope with FIFO *service order*: `scope_fifo(|s| s.spawn_fifo(..))`.
//!
//! The plain [`crate::scope`] inherits the deque's LIFO discipline on
//! the owning worker: the most recently spawned job runs first. That is
//! the right default for divide-and-conquer, but pipeline-shaped code
//! (stage N spawning stage N+1 for many items) wants the opposite —
//! items should *start* in submission order so early items drain through
//! the pipeline instead of starving behind late arrivals.
//!
//! The trick (shared with other FIFO scopes in the rayon lineage) is to
//! decouple the *closure* from the *deque slot*: `spawn_fifo` appends
//! the closure to a scope-level FIFO queue and pushes an anonymous
//! wrapper job onto the worker's deque. Whichever wrapper runs next —
//! popped LIFO by its owner or stolen FIFO by a thief — dequeues and
//! runs the *oldest* queued closure. Deque order becomes irrelevant to
//! service order; the queue alone decides, and it is first-in-first-out.

use crate::job::HeapJob;
use crate::pool::current_worker;
use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

type QueuedJob<'scope> = Box<dyn FnOnce(&ScopeFifo<'scope>) + Send + 'scope>;

/// A FIFO spawn scope. See [`scope_fifo`].
pub struct ScopeFifo<'scope> {
    pending: AtomicUsize,
    /// Closures awaiting service, oldest first. Wrapper jobs (one per
    /// queued closure) each pop and run exactly one entry.
    queue: Mutex<VecDeque<QueuedJob<'scope>>>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    // Invariant over 'scope, like `Scope`: spawned closures may borrow
    // anything that outlives the scope call.
    marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> ScopeFifo<'scope> {
    /// Spawns `body` to run before the enclosing [`scope_fifo`] returns.
    /// Spawned closures are *serviced* in spawn order (FIFO), though they
    /// may still run in parallel with each other once started.
    pub fn spawn_fifo<F>(&self, body: F)
    where
        F: FnOnce(&ScopeFifo<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::AcqRel);
        self.queue.lock().unwrap().push_back(Box::new(body));
        let this: &ScopeFifo<'scope> = self;
        let run = move || this.service_one();
        match current_worker() {
            Some(w) => {
                // SAFETY: `scope_fifo` blocks until `pending` reaches
                // zero, so the wrapper (which borrows `self`, and through
                // the queue borrows `'scope` data) cannot outlive its
                // borrows; the deque delivers it exactly once.
                let job = unsafe { HeapJob::into_job_ref(run) };
                if !w.push(job) {
                    // Deque full: service inline.
                    unsafe { job.execute() };
                }
            }
            None => run(), // no pool: immediate (and trivially FIFO)
        }
    }

    /// Runs the oldest queued closure. Exactly one queued closure exists
    /// per outstanding wrapper, so the pop cannot come up empty.
    fn service_one(&self) {
        let body = self
            .queue
            .lock()
            .unwrap()
            .pop_front()
            .expect("one queued closure per wrapper job");
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| body(self)));
        if let Err(p) = result {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }

    fn done(&self) -> bool {
        self.pending.load(Ordering::Acquire) == 0
    }
}

/// Creates a FIFO scope, runs `f` inside it, waits for every spawned
/// job, then returns `f`'s result. If any job (or `f` itself) panicked,
/// the first panic is re-raised here after all jobs have completed.
///
/// ```
/// use hood::{scope_fifo, ThreadPool};
/// use std::sync::atomic::{AtomicU32, Ordering};
///
/// let pool = ThreadPool::new(2);
/// let hits = AtomicU32::new(0);
/// pool.install(|| {
///     scope_fifo(|s| {
///         for _ in 0..8 {
///             s.spawn_fifo(|_| { hits.fetch_add(1, Ordering::Relaxed); });
///         }
///     });
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 8);
/// ```
pub fn scope_fifo<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&ScopeFifo<'scope>) -> R + Send,
    R: Send,
{
    let s = ScopeFifo {
        pending: AtomicUsize::new(0),
        queue: Mutex::new(VecDeque::new()),
        panic: Mutex::new(None),
        marker: PhantomData,
    };
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    // Wait for all spawned jobs — by working, if we are a worker.
    match current_worker() {
        Some(w) => w.wait_until(|| s.done()),
        None => {
            while !s.done() {
                std::thread::yield_now();
            }
        }
    }
    if let Some(p) = s.panic.lock().unwrap().take() {
        std::panic::resume_unwind(p);
    }
    match result {
        Ok(r) => r,
        Err(p) => std::panic::resume_unwind(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_spawns() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.install(|| {
            scope_fifo(|s| {
                for _ in 0..100 {
                    s.spawn_fifo(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    /// On a single worker with no thieves, service order must be exactly
    /// spawn order — the property that distinguishes this scope from the
    /// LIFO `crate::scope`.
    #[test]
    fn single_worker_services_in_spawn_order() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.install(|| {
            let order = &order;
            scope_fifo(|s| {
                for i in 0..32 {
                    s.spawn_fifo(move |_| {
                        order.lock().unwrap().push(i);
                    });
                }
            });
        });
        assert_eq!(*order.lock().unwrap(), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn nested_spawns_and_borrows() {
        let pool = ThreadPool::new(3);
        let mut slots = [0u64; 16];
        pool.install(|| {
            scope_fifo(|s| {
                for (i, slot) in slots.iter_mut().enumerate() {
                    s.spawn_fifo(move |s2| {
                        *slot = i as u64 + 1;
                        s2.spawn_fifo(|_| {});
                    });
                }
            });
        });
        for (i, &v) in slots.iter().enumerate() {
            assert_eq!(v, i as u64 + 1);
        }
    }

    #[test]
    fn works_outside_pool() {
        let counter = AtomicU64::new(0);
        scope_fifo(|s| {
            s.spawn_fifo(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panic_propagates_after_completion() {
        let pool = ThreadPool::new(2);
        let completed = AtomicU64::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                scope_fifo(|s| {
                    s.spawn_fifo(|_| panic!("fifo panic"));
                    for _ in 0..10 {
                        s.spawn_fifo(|_| {
                            completed.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            })
        }));
        assert!(r.is_err());
        assert_eq!(completed.load(Ordering::Relaxed), 10);
        assert_eq!(pool.install(|| 2 + 2), 4);
    }
}
