//! The combinator surface: `par_iter().map(..).filter(..).reduce(..)`
//! and friends, all lowering onto [`crate::join()`](crate::join::join).
//!
//! # Architecture
//!
//! Public combinator types ([`ParIter`], [`Map`], [`Filter`], ...) own
//! their closures and compose lazily, exactly like sequential iterator
//! adapters. A terminal method (`for_each`, `reduce`, `sum`, `count`,
//! `collect_vec`, `map_collect`) converts the pipeline into a borrowed
//! **driver** — a splittable cursor over the underlying range whose
//! closures are shared by reference — and hands it to one of two drive
//! loops:
//!
//! * [`drive_fold`] — the general engine: consult the [`Splitter`]; on a
//!   split, `join` the two halves and combine their accumulators (the
//!   combine tree mirrors the recursion, so non-commutative reductions
//!   keep slice order); otherwise fold the whole remaining range in one
//!   tight sequential loop.
//! * [`drive_fill`] — the indexed engine behind `map_collect`: exact-
//!   length pipelines write each result straight into a pre-sized uninit
//!   spine (no per-node `Vec`s, no `Default` pre-fill — one allocation
//!   total).
//!
//! Outside a pool every drive degrades to the sequential arm: the
//! splitter never splits, so the combinators are usable (and correct)
//! anywhere.
//!
//! Panics propagate: a panicking closure unwinds through `join`, which
//! waits for any stolen sibling before resuming the unwind, and
//! `map_collect`'s spine is abandoned un-lengthened (already-written
//! elements leak rather than double-drop).

use super::split::Splitter;
use crate::join::join;
use std::mem::MaybeUninit;
use std::ops::Range;

// ---------------------------------------------------------------------
// Drivers: borrowed, splittable cursors.
// ---------------------------------------------------------------------

/// A splittable cursor over a pipeline's remaining items. Internal: the
/// public surface is [`ParIterator`].
#[allow(clippy::len_without_is_empty)] // `len` is a split bound, not a container size
pub trait Driver: Sized + Send {
    type Item: Send;

    /// Items this driver will yield — exact for indexed pipelines, an
    /// upper bound after a `filter`. The splitter only needs the bound.
    fn len(&self) -> usize;

    /// Splits the underlying range in half.
    fn split(self) -> (Self, Self);

    /// Sequentially yields every item to `f`.
    fn each(self, f: &mut dyn FnMut(Self::Item));
}

/// Drivers that yield *exactly* [`Driver::len`] items, in range order —
/// the contract that makes writing into a pre-sized spine sound.
pub trait IndexedDriver: Driver {
    /// Writes every item into `out` (one slot each, in order) and
    /// returns the count written, which must equal `out.len()`.
    fn fill(self, out: &mut [MaybeUninit<Self::Item>]) -> usize {
        debug_assert_eq!(self.len(), out.len());
        let mut i = 0;
        self.each(&mut |item| {
            out[i] = MaybeUninit::new(item);
            i += 1;
        });
        i
    }
}

pub struct SliceDriver<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> Driver for SliceDriver<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split(self) -> (Self, Self) {
        let (lo, hi) = self.slice.split_at(self.slice.len() / 2);
        (SliceDriver { slice: lo }, SliceDriver { slice: hi })
    }

    fn each(self, f: &mut dyn FnMut(&'a T)) {
        for x in self.slice {
            f(x);
        }
    }
}

impl<T: Sync> IndexedDriver for SliceDriver<'_, T> {}

pub struct SliceMutDriver<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> Driver for SliceMutDriver<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split(self) -> (Self, Self) {
        let mid = self.slice.len() / 2;
        let (lo, hi) = self.slice.split_at_mut(mid);
        (SliceMutDriver { slice: lo }, SliceMutDriver { slice: hi })
    }

    fn each(self, f: &mut dyn FnMut(&'a mut T)) {
        for x in self.slice {
            f(x);
        }
    }
}

impl<T: Send> IndexedDriver for SliceMutDriver<'_, T> {}

pub struct RangeDriver {
    start: usize,
    end: usize,
}

impl Driver for RangeDriver {
    type Item = usize;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn split(self) -> (Self, Self) {
        let mid = self.start + self.len() / 2;
        (
            RangeDriver {
                start: self.start,
                end: mid,
            },
            RangeDriver {
                start: mid,
                end: self.end,
            },
        )
    }

    fn each(self, f: &mut dyn FnMut(usize)) {
        for i in self.start..self.end {
            f(i);
        }
    }
}

impl IndexedDriver for RangeDriver {}

pub struct MapDriver<'f, D, F> {
    base: D,
    f: &'f F,
}

impl<D, F, R> Driver for MapDriver<'_, D, F>
where
    D: Driver,
    F: Fn(D::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split(self) -> (Self, Self) {
        let (lo, hi) = self.base.split();
        (
            MapDriver {
                base: lo,
                f: self.f,
            },
            MapDriver {
                base: hi,
                f: self.f,
            },
        )
    }

    fn each(self, f: &mut dyn FnMut(R)) {
        let g = self.f;
        self.base.each(&mut |item| f(g(item)));
    }
}

impl<D, F, R> IndexedDriver for MapDriver<'_, D, F>
where
    D: IndexedDriver,
    F: Fn(D::Item) -> R + Sync,
    R: Send,
{
}

pub struct FilterDriver<'f, D, P> {
    base: D,
    pred: &'f P,
}

impl<D, P> Driver for FilterDriver<'_, D, P>
where
    D: Driver,
    P: Fn(&D::Item) -> bool + Sync,
{
    type Item = D::Item;

    fn len(&self) -> usize {
        self.base.len() // upper bound
    }

    fn split(self) -> (Self, Self) {
        let (lo, hi) = self.base.split();
        (
            FilterDriver {
                base: lo,
                pred: self.pred,
            },
            FilterDriver {
                base: hi,
                pred: self.pred,
            },
        )
    }

    fn each(self, f: &mut dyn FnMut(D::Item)) {
        let p = self.pred;
        self.base.each(&mut |item| {
            if p(&item) {
                f(item);
            }
        });
    }
}

// ---------------------------------------------------------------------
// Drive loops.
// ---------------------------------------------------------------------

/// The general engine: adaptive fork-join fold. `combine` is applied in
/// recursion order (left, right), so order-sensitive accumulators are
/// safe as long as `combine` is associative.
pub(crate) fn drive_fold<D, A, MK, FO, CO>(
    d: D,
    mut sp: Splitter,
    make: &MK,
    fold: &FO,
    combine: &CO,
) -> A
where
    D: Driver,
    A: Send,
    MK: Fn() -> A + Sync,
    FO: Fn(A, D::Item) -> A + Sync,
    CO: Fn(A, A) -> A + Sync,
{
    if sp.should_split(d.len()) {
        let (lo, hi) = d.split();
        let (a, b) = join(
            || drive_fold(lo, sp, make, fold, combine),
            || drive_fold(hi, sp, make, fold, combine),
        );
        combine(a, b)
    } else {
        let mut acc = Some(make());
        d.each(&mut |item| {
            let a = acc.take().expect("fold accumulator present");
            acc = Some(fold(a, item));
        });
        acc.expect("fold accumulator present")
    }
}

/// The indexed engine: writes results into disjoint halves of a
/// pre-sized uninit spine. Returns the total slots written.
pub(crate) fn drive_fill<D>(d: D, mut sp: Splitter, out: &mut [MaybeUninit<D::Item>]) -> usize
where
    D: IndexedDriver,
{
    if sp.should_split(d.len()) {
        let (lo, hi) = d.split();
        let (o_lo, o_hi) = out.split_at_mut(lo.len());
        let (a, b) = join(|| drive_fill(lo, sp, o_lo), || drive_fill(hi, sp, o_hi));
        a + b
    } else {
        d.fill(out)
    }
}

// ---------------------------------------------------------------------
// The public combinator surface.
// ---------------------------------------------------------------------

/// A parallel iterator: a lazily composed pipeline that a terminal
/// method drives through the pool's adaptive splitter. Created by
/// [`crate::par::ParallelSlice::par_iter`],
/// [`crate::par::ParallelSliceMut::par_iter_mut`], or
/// [`crate::par::IntoParIter::into_par_iter`].
///
/// All terminal methods work outside a pool too (the splitter simply
/// never splits), so code using the combinators degrades gracefully to
/// sequential execution.
pub trait ParIterator: Sized + Send {
    type Item: Send;

    /// The borrowed driver type for this pipeline.
    type Driver<'s>: Driver<Item = Self::Item> + 's
    where
        Self: 's;

    /// Builds the borrowed driver. Internal plumbing for the terminal
    /// methods; calling it twice on a mutable-slice pipeline yields an
    /// empty second driver.
    fn driver(&mut self) -> Self::Driver<'_>;

    /// Maps every item through `f`, in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Keeps only items for which `pred` holds. Filtered pipelines lose
    /// exact length, so `map_collect` is replaced by [`ParIterator::collect_vec`].
    fn filter<P>(self, pred: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, pred }
    }

    /// Calls `f` on every item, in parallel.
    fn for_each<F>(mut self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let d = self.driver();
        drive_fold(
            d,
            Splitter::new(),
            &|| (),
            &|(), item| f(item),
            &|(), ()| (),
        );
    }

    /// Reduces the items with an associative `op`, using `identity` to
    /// seed each sequential leaf. The combine tree mirrors the recursion
    /// tree, so `op` need not be commutative (order is preserved);
    /// `identity()` must be a two-sided identity for `op`. Returns
    /// `identity()` for an empty pipeline.
    fn reduce<ID, OP>(mut self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        let d = self.driver();
        drive_fold(d, Splitter::new(), &identity, &op, &op)
    }

    /// Sums the items (`Default` as the zero).
    fn sum(self) -> Self::Item
    where
        Self::Item: Default + std::ops::Add<Output = Self::Item>,
    {
        self.reduce(Self::Item::default, |a, b| a + b)
    }

    /// Counts the items (after any filtering), in parallel.
    fn count(mut self) -> usize {
        let d = self.driver();
        drive_fold(d, Splitter::new(), &|| 0usize, &|a, _| a + 1, &|a, b| a + b)
    }

    /// Collects into a `Vec`, preserving order. Works for any pipeline
    /// (including filtered ones) by concatenating per-leaf vectors at
    /// each join; exact-length pipelines should prefer
    /// [`IndexedParIterator::map_collect`], which writes a single
    /// pre-sized spine instead.
    fn collect_vec(mut self) -> Vec<Self::Item> {
        let d = self.driver();
        drive_fold(
            d,
            Splitter::new(),
            &Vec::new,
            &|mut v, item| {
                v.push(item);
                v
            },
            &|mut a, mut b| {
                a.append(&mut b);
                a
            },
        )
    }
}

/// Pipelines with exact, order-preserving length (no `filter`): the
/// ones that can collect by indexed writes into one pre-sized spine.
pub trait IndexedParIterator: ParIterator {
    type IndexedDriver<'s>: IndexedDriver<Item = Self::Item> + 's
    where
        Self: 's;

    fn indexed_driver(&mut self) -> Self::IndexedDriver<'_>;

    /// Collects into a `Vec`, preserving order, with exactly one
    /// allocation: results are written straight into a pre-sized uninit
    /// spine (no per-node buffers, no `Default` pre-fill). If a closure
    /// panics mid-drive the spine is abandoned with length zero:
    /// already-written elements are leaked, never double-dropped.
    fn map_collect(mut self) -> Vec<Self::Item> {
        let d = self.indexed_driver();
        let len = d.len();
        let mut out: Vec<Self::Item> = Vec::with_capacity(len);
        let written = drive_fill(d, Splitter::new(), &mut out.spare_capacity_mut()[..len]);
        assert_eq!(written, len, "indexed driver under-filled its spine");
        // SAFETY: exactly `len` slots were written (checked above), each
        // exactly once (disjoint `split_at_mut` halves).
        unsafe { out.set_len(len) };
        out
    }
}

/// Parallel iterator over `&[T]`, yielding `&T`.
pub struct ParIter<'a, T> {
    pub(crate) slice: &'a [T],
}

impl<'a, T: Sync> ParIterator for ParIter<'a, T> {
    type Item = &'a T;
    type Driver<'s>
        = SliceDriver<'a, T>
    where
        Self: 's;

    fn driver(&mut self) -> SliceDriver<'a, T> {
        SliceDriver { slice: self.slice }
    }
}

impl<'a, T: Sync> IndexedParIterator for ParIter<'a, T> {
    type IndexedDriver<'s>
        = SliceDriver<'a, T>
    where
        Self: 's;

    fn indexed_driver(&mut self) -> SliceDriver<'a, T> {
        SliceDriver { slice: self.slice }
    }
}

impl<'a, T: Copy + Sync + Send> ParIter<'a, T> {
    /// Copies each item out of its reference, like sequential
    /// `iter().copied()` — handy before `sum` or `map_collect`.
    pub fn copied(self) -> Map<Self, fn(&'a T) -> T> {
        Map {
            base: self,
            f: |x: &'a T| *x,
        }
    }
}

/// Parallel iterator over `&mut [T]`, yielding `&mut T`.
pub struct ParIterMut<'a, T> {
    pub(crate) slice: &'a mut [T],
}

impl<'a, T: Send> ParIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type Driver<'s>
        = SliceMutDriver<'a, T>
    where
        Self: 's;

    fn driver(&mut self) -> SliceMutDriver<'a, T> {
        SliceMutDriver {
            slice: std::mem::take(&mut self.slice),
        }
    }
}

/// Parallel iterator over `start..end`, yielding `usize`.
pub struct ParRange {
    pub(crate) range: Range<usize>,
}

impl ParIterator for ParRange {
    type Item = usize;
    type Driver<'s> = RangeDriver;

    fn driver(&mut self) -> RangeDriver {
        RangeDriver {
            start: self.range.start,
            end: self.range.end.max(self.range.start),
        }
    }
}

impl IndexedParIterator for ParRange {
    type IndexedDriver<'s> = RangeDriver;

    fn indexed_driver(&mut self) -> RangeDriver {
        self.driver()
    }
}

/// Lazy `map` pipeline; see [`ParIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParIterator for Map<I, F>
where
    I: ParIterator,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
    type Item = R;
    type Driver<'s>
        = MapDriver<'s, I::Driver<'s>, F>
    where
        Self: 's;

    fn driver(&mut self) -> Self::Driver<'_> {
        MapDriver {
            base: self.base.driver(),
            f: &self.f,
        }
    }
}

impl<I, F, R> IndexedParIterator for Map<I, F>
where
    I: IndexedParIterator,
    F: Fn(I::Item) -> R + Sync + Send,
    R: Send,
{
    type IndexedDriver<'s>
        = MapDriver<'s, I::IndexedDriver<'s>, F>
    where
        Self: 's;

    fn indexed_driver(&mut self) -> Self::IndexedDriver<'_> {
        MapDriver {
            base: self.base.indexed_driver(),
            f: &self.f,
        }
    }
}

/// Lazy `filter` pipeline; see [`ParIterator::filter`].
pub struct Filter<I, P> {
    base: I,
    pred: P,
}

impl<I, P> ParIterator for Filter<I, P>
where
    I: ParIterator,
    P: Fn(&I::Item) -> bool + Sync + Send,
{
    type Item = I::Item;
    type Driver<'s>
        = FilterDriver<'s, I::Driver<'s>, P>
    where
        Self: 's;

    fn driver(&mut self) -> Self::Driver<'_> {
        FilterDriver {
            base: self.base.driver(),
            pred: &self.pred,
        }
    }
}

/// Conversion into a parallel iterator — implemented for slices,
/// `&Vec<T>`, and `Range<usize>`.
pub trait IntoParIter {
    type Iter: ParIterator;

    fn into_par_iter(self) -> Self::Iter;
}

impl<'a, T: Sync> IntoParIter for &'a [T] {
    type Iter = ParIter<'a, T>;

    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParIter for &'a Vec<T> {
    type Iter = ParIter<'a, T>;

    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Send> IntoParIter for &'a mut [T] {
    type Iter = ParIterMut<'a, T>;

    fn into_par_iter(self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl IntoParIter for Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ParallelSlice, ParallelSliceMut};
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn map_sum_matches_sequential() {
        let pool = ThreadPool::new(4);
        let v: Vec<u64> = (1..=10_000).collect();
        let got: u64 = pool.install(|| v.par_iter().map(|&x| x * x).sum());
        let want: u64 = v.iter().map(|&x| x * x).sum();
        assert_eq!(got, want);
    }

    #[test]
    fn filter_count_and_collect() {
        let pool = ThreadPool::new(4);
        let v: Vec<u32> = (0..10_000).collect();
        let (n, evens) = pool.install(|| {
            let n = v.par_iter().filter(|&&x| x % 2 == 0).count();
            let evens: Vec<u32> = v.par_iter().copied().filter(|&x| x % 2 == 0).collect_vec();
            (n, evens)
        });
        assert_eq!(n, 5_000);
        let want: Vec<u32> = (0..10_000).filter(|x| x % 2 == 0).collect();
        assert_eq!(evens, want);
    }

    #[test]
    fn map_collect_is_ordered() {
        let pool = ThreadPool::new(4);
        let v: Vec<u32> = (0..50_000).collect();
        let out: Vec<u64> = pool.install(|| v.par_iter().map(|&x| x as u64 * 3).map_collect());
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i as u64 * 3);
        }
    }

    #[test]
    fn range_pipeline() {
        let pool = ThreadPool::new(3);
        let s: usize = pool.install(|| (0..1000usize).into_par_iter().map(|i| i * 2).sum());
        assert_eq!(s, 999 * 1000);
    }

    #[test]
    fn par_iter_mut_for_each() {
        let pool = ThreadPool::new(4);
        let mut v: Vec<u64> = (0..20_000).collect();
        pool.install(|| v.par_iter_mut().for_each(|x| *x *= 2));
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, 2 * i as u64);
        }
    }

    #[test]
    fn reduce_keeps_order() {
        let pool = ThreadPool::new(4);
        let v: Vec<u32> = (0..500).collect();
        let got = pool.install(|| {
            v.par_iter()
                .map(|x| format!("{x},"))
                .reduce(String::new, |a, b| a + &b)
        });
        let want: String = (0..500).map(|x| format!("{x},")).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn works_outside_pool() {
        let v: Vec<u64> = (0..100).collect();
        assert_eq!(v.par_iter().copied().sum(), 4950);
        assert_eq!(v.par_iter().map(|&x| x + 1).map_collect().len(), 100);
        assert_eq!(v.par_iter().filter(|&&x| x < 10).count(), 10);
    }

    #[test]
    fn empty_and_singleton() {
        let pool = ThreadPool::new(2);
        pool.install(|| {
            let empty: Vec<u32> = vec![];
            assert_eq!(empty.par_iter().copied().sum(), 0);
            assert_eq!(empty.par_iter().count(), 0);
            assert!(empty.par_iter().copied().map_collect().is_empty());
            let one = [7u32];
            assert_eq!(one.par_iter().copied().sum(), 7);
            assert_eq!(one.par_iter().copied().map_collect(), vec![7]);
            assert_eq!(one.par_iter().map(|&x| x).reduce(|| 0u32, |a, b| a + b), 7);
        });
    }
}
