//! Fork-join primitive: `join(a, b)` runs the two closures potentially in
//! parallel and returns both results.
//!
//! On a worker thread this is the textbook work-stealing spawn: `b` is
//! pushed onto the bottom of the worker's deque (the paper's *spawn*
//! action, depth-first "latter choice"), `a` runs immediately, and the
//! worker then reconciles with whatever happened to `b`:
//!
//! * still in our deque → pop it back and run it inline (the common,
//!   allocation-free fast path);
//! * stolen and finished → take the thief's result through the latch;
//! * stolen and in progress → *wait by working*: execute other pending
//!   jobs or steal from other workers until the latch sets (a process is
//!   never idle while ready work exists — the scheduling loop's
//!   discipline).
//!
//! Panics in either closure propagate to the caller; if `a` panics while
//! `b` is stolen, we still wait for `b` to finish before unwinding, so no
//! thief can touch a dead stack frame.

use crate::job::{JobResult, StackJob};
use crate::pool::{current_worker, AnyWorker};
use std::panic::AssertUnwindSafe;

/// Runs `oper_a` and `oper_b`, potentially in parallel, returning both
/// results. Outside a pool this degenerates to sequential calls.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_worker() {
        Some(w) => join_on_worker(w, oper_a, oper_b),
        None => (oper_a(), oper_b()),
    }
}

fn join_on_worker<A, B, RA, RB>(worker: &dyn AnyWorker, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(oper_b);
    // SAFETY: job_b is kept alive (and this frame pinned) until either we
    // pop it back or its latch is set — see the reconcile loop below.
    let job_ref = unsafe { job_b.as_job_ref() };
    if !worker.push(job_ref) {
        // Deque at capacity: run sequentially.
        let ra = oper_a();
        let rb = unsafe { job_b.run_inline() };
        return (ra, rb);
    }

    let status_a = std::panic::catch_unwind(AssertUnwindSafe(oper_a));

    // Reconcile job_b. This loop must complete before we can return *or*
    // unwind, because job_b lives in this frame. `None` means we popped
    // our own job back un-executed.
    //
    // Pop first, probe the latch second: on the never-stolen fast path the
    // very first pop returns `job_ref` itself, so the common case is one
    // deque pop with no latch probe, no shared-state writes, and no
    // telemetry timestamp — the fast path stays exactly push + pop. The
    // latch only needs probing once the pop has told us `b` is gone.
    let result_b: Option<JobResult<RB>> = loop {
        match worker.pop() {
            Some(j) if j == job_ref => {
                // Popped our own job back: nobody else will ever run it.
                break None;
            }
            Some(j) => {
                // A pending job from an enclosing join/scope: running it
                // here is equivalent to it having been stolen.
                worker.execute_job(j);
            }
            None => {
                // Deque empty and b out with a thief. A stolen join
                // operand usually retires within a few hundred cycles, so
                // spin briefly on the latch before paying for a steal
                // scan; the bound preserves the wait-by-working (and
                // ultimately parking) discipline.
                if job_b.latch.probe_spin(64) {
                    break Some(unsafe { job_b.take_result() });
                }
                // Contribute by stealing elsewhere (includes the
                // configured yield).
                if let Some(j) = worker.find_distant_work() {
                    worker.execute_job(j);
                }
            }
        }
        if job_b.latch.probe() {
            break Some(unsafe { job_b.take_result() });
        }
    };

    match status_a {
        Ok(ra) => {
            let rb = match result_b {
                Some(r) => r.into_return_value(),
                // Fast path: b never left our deque; run it inline.
                None => unsafe { job_b.run_inline() },
            };
            (ra, rb)
        }
        Err(p) => {
            // Surface a's panic. b either completed on a thief (its
            // result, panic payload included, is dropped) or was reclaimed
            // un-run.
            drop(result_b);
            std::panic::resume_unwind(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PoolConfig, ThreadPool};

    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }

    #[test]
    fn join_outside_pool_is_sequential() {
        let (a, b) = join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn parallel_fib_matches_serial() {
        let pool = ThreadPool::new(4);
        let r = pool.install(|| fib(18));
        assert_eq!(r, 2584);
    }

    #[test]
    fn join_with_borrows() {
        let pool = ThreadPool::new(2);
        let data: Vec<u64> = (0..1000).collect();
        let sum = pool.install(|| {
            let (l, r) = join(
                || data[..500].iter().sum::<u64>(),
                || data[500..].iter().sum::<u64>(),
            );
            l + r
        });
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn deep_nesting() {
        let pool = ThreadPool::new(3);
        fn depth_sum(d: u32) -> u64 {
            if d == 0 {
                return 1;
            }
            let (a, b) = join(|| depth_sum(d - 1), || depth_sum(d - 1));
            a + b
        }
        assert_eq!(pool.install(|| depth_sum(12)), 1 << 12);
    }

    #[test]
    fn panic_in_a_propagates() {
        let pool = ThreadPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                let _ = join(|| panic!("a-side"), || 1 + 1);
            })
        }));
        assert!(r.is_err());
        // The pool must still be usable.
        assert_eq!(pool.install(|| fib(10)), 55);
    }

    #[test]
    fn panic_in_b_propagates() {
        let pool = ThreadPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                let _ = join(|| 1 + 1, || panic!("b-side"));
            })
        }));
        assert!(r.is_err());
        assert_eq!(pool.install(|| fib(10)), 55);
    }

    #[test]
    fn single_worker_pool_still_completes() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.install(|| fib(15)), 610);
    }

    #[test]
    fn growable_backend_never_overflows() {
        let pool = ThreadPool::with_config(PoolConfig {
            num_procs: 3,
            // Pathologically tiny initial capacity: growth must kick in.
            backend: crate::pool::Backend::AbpGrowable {
                initial_capacity: 2,
            },
            ..PoolConfig::default()
        });
        assert_eq!(pool.install(|| fib(18)), 2584);
    }

    #[test]
    fn locking_backend_works_too() {
        let pool = ThreadPool::with_config(PoolConfig {
            num_procs: 3,
            backend: crate::pool::Backend::Locking,
            ..PoolConfig::default()
        });
        assert_eq!(pool.install(|| fib(16)), 987);
    }

    /// The fence-free multiplicity backend, selected through the typed
    /// `with_deque` descriptor: `join`'s LIFO reconcile fast path works
    /// unchanged (the owner's `popBottom` is exactly-once), duplicates
    /// are counted not executed, and the backend structurally cannot
    /// abort.
    #[test]
    fn fence_free_backend_runs_join_and_never_aborts() {
        let pool = ThreadPool::with_config(
            PoolConfig::default()
                .with_num_procs(4)
                .with_deque(abp_deque::FenceFreeBackend { capacity: 1 << 12 }),
        );
        assert_eq!(pool.install(|| fib(18)), 2584);
        let report = pool.shutdown();
        assert_eq!(report.backend, "fence-free");
        assert_eq!(
            report.stats.aborts, 0,
            "fence-free popTop has no cas to lose"
        );
        assert!(report.stats.attempts_balance(), "{:?}", report.stats);
    }

    #[test]
    fn steal_is_forced_when_a_waits_on_b() {
        use std::sync::atomic::{AtomicBool, Ordering};
        // `a` cannot finish until `b` runs, and the worker executing `a`
        // cannot run `b` itself (it is busy in `a`), so some other worker
        // *must* steal `b` — a deterministic steal even on one core.
        let pool = ThreadPool::new(4);
        let flag = AtomicBool::new(false);
        pool.install(|| {
            join(
                || {
                    while !flag.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                },
                || flag.store(true, Ordering::Release),
            )
        });
        let stats = pool.stats();
        assert!(stats.jobs > 0);
        assert!(stats.steals >= 1, "no steal recorded: {stats:?}");
    }
}
