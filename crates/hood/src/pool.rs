//! The thread pool: `P` worker threads ("processes" in the paper's
//! vocabulary), one ABP deque each, randomized stealing, and yields
//! between steal attempts.
//!
//! The scheduling loop follows Figure 3: a worker executes its assigned
//! job; completed jobs are replaced by popping the bottom of its own
//! deque; an empty deque turns the worker into a thief that yields, picks
//! a uniformly random victim, and tries `popTop` on the victim's deque.
//! All inter-worker synchronization is non-blocking (the deque) except
//! the optional parking of *completely idle* workers, which exists so an
//! idle pool does not burn CPU — it is on a timeout and never holds locks
//! around work, so it cannot reintroduce the preemption pathology the
//! paper's non-blocking design eliminates.
//!
//! With the `telemetry` feature (on by default) a pool can additionally
//! record a structured event trace — spawns, job spans, every steal
//! attempt with its outcome, yields, parks — into per-worker lock-free
//! rings (see [`abp_telemetry`]). Tracing is also gated at *runtime*: it
//! is off unless [`PoolConfig::telemetry`] is `Some`, and when off each
//! instrumentation point costs one branch on an `Option`.

use crate::job::JobRef;
use crate::latch::LockLatch;
use crate::stats::{PoolStats, WorkerStats};
use abp_dag::DetRng;
use abp_deque::{GrowableStealer, GrowableWorker, LockingDeque, Steal, Stealer, Worker};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[cfg(feature = "telemetry")]
use abp_telemetry::{EventKind, Registry, StealOutcome, WorkerTelemetry};
#[cfg(feature = "telemetry")]
pub use abp_telemetry::{TelemetryConfig, TelemetrySnapshot};

/// Which deque implementation backs each worker — the ablation axis for
/// the paper's "non-blocking data structures are essential" claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The non-blocking ABP deque with the given (fixed) array capacity.
    /// On overflow, jobs run inline — correct, just less parallel.
    Abp { capacity: usize },
    /// The growable ABP deque (retire-list buffers): never overflows.
    AbpGrowable { initial_capacity: usize },
    /// A mutex-protected deque.
    Locking,
}

impl Default for Backend {
    fn default() -> Self {
        Backend::Abp { capacity: 1 << 15 }
    }
}

/// Pool construction parameters.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of worker threads (the paper's fixed process count `P`).
    pub num_procs: usize,
    pub backend: Backend,
    /// Call `std::thread::yield_now` between failed steal scans — the
    /// paper's `yield` (§4.4). Turning this off degrades sharply when
    /// `P` exceeds the processors available.
    pub yield_between_steals: bool,
    /// Park an idle worker (100 µs timeout) after this many consecutive
    /// failed scans; `None` = pure spinning, as in the original Hood.
    pub park_after: Option<u32>,
    /// Seed for victim selection.
    pub seed: u64,
    /// Worker thread stack size in bytes. Work stealing executes stolen
    /// jobs on the thief's stack ("leapfrogging"), so deep recursive
    /// workloads need headroom beyond the platform default.
    pub stack_size: usize,
    /// Structured tracing: `Some(config)` records events and histograms
    /// into per-worker rings; `None` (the default) records nothing and
    /// leaves only an untaken branch at each instrumentation point.
    #[cfg(feature = "telemetry")]
    pub telemetry: Option<TelemetryConfig>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            num_procs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            backend: Backend::default(),
            yield_between_steals: true,
            park_after: Some(64),
            seed: 0xAB9,
            stack_size: 8 * 1024 * 1024,
            #[cfg(feature = "telemetry")]
            telemetry: None,
        }
    }
}

enum OwnerDeque {
    Abp(Worker<usize>),
    Growable(GrowableWorker<usize>),
    Lock(LockingDeque<usize>),
}

enum StealerSide {
    Abp(Stealer<usize>),
    Growable(GrowableStealer<usize>),
    Lock(LockingDeque<usize>),
}

impl StealerSide {
    fn steal(&self) -> Steal<usize> {
        match self {
            StealerSide::Abp(s) => s.pop_top(),
            StealerSide::Growable(s) => s.pop_top(),
            StealerSide::Lock(d) => d.pop_top(),
        }
    }
}

pub(crate) struct Shared {
    stealers: Vec<StealerSide>,
    injector: Mutex<VecDeque<JobRef>>,
    injected: AtomicUsize,
    shutdown: AtomicBool,
    sleep_mutex: Mutex<()>,
    sleep_cv: Condvar,
    pub(crate) stats: Vec<WorkerStats>,
    yield_between_steals: bool,
    park_after: Option<u32>,
    #[cfg(feature = "telemetry")]
    registry: Option<Arc<Registry>>,
}

impl Shared {
    fn inject(&self, job: JobRef) {
        self.injector.lock().unwrap().push_back(job);
        self.injected.fetch_add(1, Ordering::Release);
        self.sleep_cv.notify_all();
    }

    fn take_injected(&self) -> Option<JobRef> {
        if self.injected.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut q = self.injector.lock().unwrap();
        let job = q.pop_front();
        if job.is_some() {
            self.injected.fetch_sub(1, Ordering::Release);
        }
        job
    }
}

/// Worker-thread-local context. A raw pointer to it lives in TLS while the
/// worker runs.
pub struct WorkerCtx {
    index: usize,
    deque: OwnerDeque,
    shared: Arc<Shared>,
    rng: RefCell<DetRng>,
    fail_streak: Cell<u32>,
    #[cfg(feature = "telemetry")]
    tele: Option<WorkerTelemetry>,
}

thread_local! {
    static CURRENT: Cell<*const WorkerCtx> = const { Cell::new(std::ptr::null()) };
}

/// The current worker context, if this thread is a pool worker.
pub(crate) fn current_worker<'a>() -> Option<&'a WorkerCtx> {
    let p = CURRENT.with(|c| c.get());
    if p.is_null() {
        None
    } else {
        // SAFETY: the pointer is set for exactly the lifetime of
        // worker_main's stack frame on this thread.
        Some(unsafe { &*p })
    }
}

impl WorkerCtx {
    /// Worker index within the pool.
    pub fn index(&self) -> usize {
        self.index
    }

    fn stats(&self) -> &WorkerStats {
        &self.shared.stats[self.index]
    }

    #[cfg(feature = "telemetry")]
    #[inline]
    fn tele_record(&self, kind: EventKind) {
        if let Some(t) = &self.tele {
            t.record(kind);
        }
    }

    /// `pushBottom`. Returns false if the (fixed-capacity) deque is full —
    /// the caller then runs the job inline instead.
    pub(crate) fn push(&self, job: JobRef) -> bool {
        #[cfg(feature = "telemetry")]
        self.tele_record(EventKind::Spawn);
        match &self.deque {
            OwnerDeque::Abp(w) => w.push_bottom(job.to_word()).is_ok(),
            OwnerDeque::Growable(w) => {
                w.push_bottom(job.to_word());
                true
            }
            OwnerDeque::Lock(d) => {
                d.push_bottom(job.to_word());
                true
            }
        }
    }

    /// `popBottom`.
    pub(crate) fn pop(&self) -> Option<JobRef> {
        let w = match &self.deque {
            OwnerDeque::Abp(w) => w.pop_bottom(),
            OwnerDeque::Growable(w) => w.pop_bottom(),
            OwnerDeque::Lock(d) => d.pop_bottom(),
        };
        w.map(JobRef::from_word)
    }

    /// Executes `job` and maintains the job counter, the job-run-time
    /// histogram, and the `ExecStart`/`ExecEnd` trace span. Every job the
    /// scheduler runs goes through here so counts and traces agree.
    pub(crate) fn execute_job(&self, job: JobRef) {
        #[cfg(feature = "telemetry")]
        let started = self.tele.as_ref().map(|t| {
            let now = t.now_ns();
            t.record_at(now, EventKind::ExecStart);
            now
        });
        unsafe { job.execute() };
        self.stats().jobs.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "telemetry")]
        if let (Some(t), Some(t0)) = (self.tele.as_ref(), started) {
            let now = t.now_ns();
            t.job_run_ns(now.saturating_sub(t0));
            t.record_at(now, EventKind::ExecEnd);
        }
    }

    /// One full steal scan: yield (per config), then try every other
    /// worker once in random order, then the injector.
    pub(crate) fn find_distant_work(&self) -> Option<JobRef> {
        let shared = &*self.shared;
        if shared.yield_between_steals {
            self.stats().yields.fetch_add(1, Ordering::Relaxed);
            #[cfg(feature = "telemetry")]
            self.tele_record(EventKind::Yield);
            std::thread::yield_now();
        }
        #[cfg(feature = "telemetry")]
        let scan_start = self.tele.as_ref().map(|t| t.now_ns());
        let n = shared.stealers.len();
        if n > 1 {
            let start = self.rng.borrow_mut().below_usize(n - 1);
            for k in 0..n - 1 {
                let mut v = (start + k) % (n - 1);
                if v >= self.index {
                    v += 1;
                }
                self.stats().steal_attempts.fetch_add(1, Ordering::Relaxed);
                match shared.stealers[v].steal() {
                    Steal::Taken(w) => {
                        self.stats().steals.fetch_add(1, Ordering::Relaxed);
                        #[cfg(feature = "telemetry")]
                        if let Some(t) = self.tele.as_ref() {
                            let now = t.now_ns();
                            // Steal latency: scan start → successful grab.
                            t.steal_latency_ns(now.saturating_sub(scan_start.unwrap_or(now)));
                            t.record_at(
                                now,
                                EventKind::StealAttempt {
                                    victim: v as u32,
                                    outcome: StealOutcome::Hit,
                                },
                            );
                        }
                        return Some(JobRef::from_word(w));
                    }
                    Steal::Abort => {
                        self.stats().aborts.fetch_add(1, Ordering::Relaxed);
                        #[cfg(feature = "telemetry")]
                        self.tele_record(EventKind::StealAttempt {
                            victim: v as u32,
                            outcome: StealOutcome::Abort,
                        });
                    }
                    Steal::Empty => {
                        self.stats().empties.fetch_add(1, Ordering::Relaxed);
                        #[cfg(feature = "telemetry")]
                        self.tele_record(EventKind::StealAttempt {
                            victim: v as u32,
                            outcome: StealOutcome::Empty,
                        });
                    }
                }
            }
        }
        shared.take_injected()
    }

    /// Executes other work (or yields) while waiting for `probe` to become
    /// true; used by `join` when its second operand was stolen, and by
    /// scopes. Never parks: a waiting worker keeps contributing.
    pub(crate) fn wait_until(&self, probe: impl Fn() -> bool) {
        while !probe() {
            if let Some(job) = self.pop().or_else(|| self.find_distant_work()) {
                self.execute_job(job);
            }
        }
    }
}

fn worker_main(ctx: WorkerCtx) {
    CURRENT.with(|c| c.set(&ctx as *const WorkerCtx));
    let shared = Arc::clone(&ctx.shared);
    loop {
        let job = ctx.pop().or_else(|| ctx.find_distant_work());
        match job {
            Some(job) => {
                ctx.fail_streak.set(0);
                ctx.execute_job(job);
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let fails = ctx.fail_streak.get() + 1;
                ctx.fail_streak.set(fails);
                if let Some(limit) = shared.park_after {
                    if fails >= limit {
                        ctx.stats().parks.fetch_add(1, Ordering::Relaxed);
                        #[cfg(feature = "telemetry")]
                        ctx.tele_record(EventKind::Park);
                        let guard = shared.sleep_mutex.lock().unwrap();
                        // Re-check for work signals under the lock.
                        if shared.injected.load(Ordering::Acquire) == 0
                            && !shared.shutdown.load(Ordering::Acquire)
                        {
                            let _ = shared
                                .sleep_cv
                                .wait_timeout(guard, Duration::from_micros(100));
                        }
                        #[cfg(feature = "telemetry")]
                        ctx.tele_record(EventKind::Unpark);
                    }
                }
            }
        }
    }
    CURRENT.with(|c| c.set(std::ptr::null()));
}

/// What [`ThreadPool::shutdown`] returns: final statistics gathered
/// *after* every worker has exited, so no counter or trace can still be
/// moving underneath the caller.
#[derive(Debug)]
pub struct PoolReport {
    /// Aggregate counters over the pool's whole life.
    pub stats: PoolStats,
    /// The same counters, per worker.
    pub per_worker: Vec<PoolStats>,
    /// The final telemetry snapshot, if tracing was configured.
    #[cfg(feature = "telemetry")]
    pub telemetry: Option<TelemetrySnapshot>,
}

/// A work-stealing thread pool in the spirit of the authors' Hood library.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool with `num_procs` workers and default configuration.
    pub fn new(num_procs: usize) -> Self {
        Self::with_config(PoolConfig {
            num_procs,
            ..PoolConfig::default()
        })
    }

    /// A pool with explicit configuration.
    pub fn with_config(config: PoolConfig) -> Self {
        assert!(config.num_procs >= 1);
        let p = config.num_procs;
        let mut owners = Vec::with_capacity(p);
        let mut stealers = Vec::with_capacity(p);
        for _ in 0..p {
            match config.backend {
                Backend::Abp { capacity } => {
                    let (w, s) = abp_deque::new::<usize>(capacity);
                    owners.push(OwnerDeque::Abp(w));
                    stealers.push(StealerSide::Abp(s));
                }
                Backend::AbpGrowable { initial_capacity } => {
                    let (w, s) = abp_deque::new_growable::<usize>(initial_capacity);
                    owners.push(OwnerDeque::Growable(w));
                    stealers.push(StealerSide::Growable(s));
                }
                Backend::Locking => {
                    let d = LockingDeque::new();
                    stealers.push(StealerSide::Lock(d.clone()));
                    owners.push(OwnerDeque::Lock(d));
                }
            }
        }
        #[cfg(feature = "telemetry")]
        let registry = config.telemetry.as_ref().map(|tc| Registry::new(p, tc));
        let shared = Arc::new(Shared {
            stealers,
            injector: Mutex::new(VecDeque::new()),
            injected: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep_mutex: Mutex::new(()),
            sleep_cv: Condvar::new(),
            stats: (0..p).map(|_| WorkerStats::default()).collect(),
            yield_between_steals: config.yield_between_steals,
            park_after: config.park_after,
            #[cfg(feature = "telemetry")]
            registry,
        });
        let mut seed_rng = DetRng::new(config.seed);
        let handles = owners
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let ctx = WorkerCtx {
                    index,
                    deque,
                    shared: Arc::clone(&shared),
                    rng: RefCell::new(seed_rng.fork(index as u64)),
                    fail_streak: Cell::new(0),
                    #[cfg(feature = "telemetry")]
                    tele: shared.registry.as_ref().map(|r| r.worker(index)),
                };
                std::thread::Builder::new()
                    .name(format!("hood-worker-{index}"))
                    .stack_size(config.stack_size)
                    .spawn(move || worker_main(ctx))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// The process count `P`.
    pub fn num_procs(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f` inside the pool (so that [`crate::join()`](crate::join::join) and
    /// [`crate::scope()`](crate::scope::scope) parallelize) and returns its result. Blocks the
    /// calling thread until done. If already on a worker thread of this
    /// pool, runs `f` directly.
    ///
    /// Calling this from a worker thread of a *different* pool blocks
    /// that worker (it sleeps rather than work-steals) — mutual
    /// cross-pool installs can therefore deadlock, exactly as in other
    /// work-stealing runtimes. Prefer one pool, or acyclic pool
    /// dependencies.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some(w) = current_worker() {
            if Arc::ptr_eq(&w.shared, &self.shared) {
                return f();
            }
        }
        let result: Mutex<Option<std::thread::Result<R>>> = Mutex::new(None);
        let latch = LockLatch::new();
        {
            // SAFETY: we block on `latch` before leaving this scope, so
            // every borrow the job captures outlives its execution, and
            // the injector hands the job to exactly one worker.
            let job = unsafe {
                crate::job::HeapJob::into_job_ref(|| {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    *result.lock().unwrap() = Some(r);
                    latch.set();
                })
            };
            self.shared.inject(job);
            latch.wait();
        }
        match result
            .into_inner()
            .unwrap()
            .expect("install job did not produce a result")
        {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Aggregate scheduler statistics since pool creation.
    pub fn stats(&self) -> PoolStats {
        PoolStats::aggregate(&self.shared.stats)
    }

    /// Per-worker scheduler statistics since pool creation.
    pub fn per_worker_stats(&self) -> Vec<PoolStats> {
        self.shared.stats.iter().map(|w| w.snapshot()).collect()
    }

    /// A live telemetry snapshot, if tracing was configured. Workers keep
    /// running (and recording) while this executes; for counts that must
    /// be exact, stop the pool with [`ThreadPool::shutdown`] instead.
    #[cfg(feature = "telemetry")]
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.shared.registry.as_ref().map(|r| r.snapshot())
    }

    /// Stops the pool (joining every worker) and returns the final,
    /// quiescent statistics and telemetry. Unlike [`ThreadPool::stats`] /
    /// [`ThreadPool::telemetry_snapshot`], nothing can race this: the
    /// trace, the per-worker counters, and the aggregate are mutually
    /// consistent.
    pub fn shutdown(mut self) -> PoolReport {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.sleep_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        PoolReport {
            stats: self.stats(),
            per_worker: self.per_worker_stats(),
            #[cfg(feature = "telemetry")]
            telemetry: self.shared.registry.as_ref().map(|r| r.snapshot()),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.sleep_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
