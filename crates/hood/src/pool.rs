//! The thread pool: `P` worker threads ("processes" in the paper's
//! vocabulary), one ABP deque each, randomized stealing, and yields
//! between steal attempts.
//!
//! The scheduling loop follows Figure 3: a worker executes its assigned
//! job; completed jobs are replaced by popping the bottom of its own
//! deque; an empty deque turns the worker into a thief that backs off,
//! picks a victim, and tries `popTop` on the victim's deque. The three
//! policy points of that loop — victim selection (line 16), contention
//! backoff (line 15), and what a persistently idle worker does — are
//! pluggable via [`PoolConfig::policies`] (an [`abp_core::PolicySet`]);
//! the default is the paper's uniform-random victim and yield, plus
//! parking a completely idle worker so an idle pool does not burn CPU.
//! Parking goes through the [`crate::sleep`] eventcount, whose
//! announce/re-scan/commit protocol closes the missed-wakeup race by
//! construction — so the default park is *untimed*
//! ([`IdleKind::ParkUntilWake`]) and producers wake exactly
//! `min(jobs, sleepers)` workers instead of the whole pool. All
//! inter-worker synchronization is non-blocking (the deque) except that
//! optional parking, which never holds locks around work, so it cannot
//! reintroduce the preemption pathology the paper's non-blocking design
//! eliminates.
//!
//! With the `telemetry` feature (on by default) a pool can additionally
//! record a structured event trace — spawns, job spans, every steal
//! attempt with its outcome, yields, parks — into per-worker lock-free
//! rings (see [`abp_telemetry`]). Tracing is also gated at *runtime*: it
//! is off unless [`PoolConfig::telemetry`] is `Some`, and when off each
//! instrumentation point costs one branch on an `Option`.

use crate::injector::Injector;
use crate::job::JobRef;
use crate::latch::LockLatch;
use crate::sleep::{Sleep, SleepKind, SleepOutcome, SleepStats};
use crate::stats::{PoolStats, WorkerStats};
use abp_core::{
    BackoffAction, IdleAction, IdleKind, PolicyEngine, PolicyRng, PolicySet, SplitKind,
    StealResult,
};
use abp_dag::DetRng;
use abp_deque::{GrowableStealer, GrowableWorker, LockingDeque, Steal, Stealer, Worker};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[cfg(feature = "telemetry")]
use abp_telemetry::{EventKind, Registry, StealOutcome, WorkerTelemetry};
#[cfg(feature = "telemetry")]
pub use abp_telemetry::{TelemetryConfig, TelemetrySnapshot};

/// Which deque implementation backs each worker — the ablation axis for
/// the paper's "non-blocking data structures are essential" claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The non-blocking ABP deque with the given (fixed) array capacity.
    /// On overflow, jobs run inline — correct, just less parallel.
    Abp { capacity: usize },
    /// The growable ABP deque (retire-list buffers): never overflows.
    AbpGrowable { initial_capacity: usize },
    /// A mutex-protected deque.
    Locking,
}

impl Default for Backend {
    fn default() -> Self {
        Backend::Abp { capacity: 1 << 15 }
    }
}

/// Pool construction parameters.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of worker threads (the paper's fixed process count `P`).
    pub num_procs: usize,
    pub backend: Backend,
    /// The scheduling-policy set (victim selection, contention backoff,
    /// idle behaviour). The default is the paper's policy with Hood's
    /// engineering compromise on the idle axis: uniform victims, a yield
    /// between failed steal scans, and parking (100 µs timeout) after 64
    /// consecutive failed scans so an idle pool does not burn CPU.
    pub policies: PolicySet,
    /// Seed for victim selection.
    pub seed: u64,
    /// Worker thread stack size in bytes. Work stealing executes stolen
    /// jobs on the thief's stack ("leapfrogging"), so deep recursive
    /// workloads need headroom beyond the platform default.
    pub stack_size: usize,
    /// Shards in the external-submission injector; `0` (the default)
    /// sizes it to the worker count.
    pub injector_shards: usize,
    /// Which sleep/wake implementation idle workers park through. The
    /// default tracks the `sleep-condvar-fallback` feature: the
    /// eventcount normally, the legacy pool-wide condvar under the
    /// feature (the measurable baseline for experiment ID1).
    pub sleep: SleepKind,
    /// Structured tracing: `Some(config)` records events and histograms
    /// into per-worker rings; `None` (the default) records nothing and
    /// leaves only an untaken branch at each instrumentation point.
    #[cfg(feature = "telemetry")]
    pub telemetry: Option<TelemetryConfig>,
}

impl PoolConfig {
    /// The default idle policy: park *untimed* after 64 consecutive
    /// failed steal scans and stay asleep until a producer's wake. Sound
    /// because the eventcount closes the missed-wakeup race (and the
    /// condvar fallback substitutes its legacy 100 µs bounded nap for
    /// the untimed park, so the policy is safe under both backends).
    pub const DEFAULT_IDLE: IdleKind = IdleKind::ParkUntilWake { threshold: 64 };

    /// Replaces the worker count.
    pub fn with_num_procs(mut self, num_procs: usize) -> Self {
        self.num_procs = num_procs;
        self
    }

    /// Replaces the deque backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the scheduling-policy set.
    pub fn with_policies(mut self, policies: PolicySet) -> Self {
        self.policies = policies;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the worker stack size.
    pub fn with_stack_size(mut self, stack_size: usize) -> Self {
        self.stack_size = stack_size;
        self
    }

    /// Replaces the injector shard count (`0` = one shard per worker).
    pub fn with_injector_shards(mut self, injector_shards: usize) -> Self {
        self.injector_shards = injector_shards;
        self
    }

    /// Replaces the sleep/wake backend.
    pub fn with_sleep(mut self, sleep: SleepKind) -> Self {
        self.sleep = sleep;
        self
    }

    /// Enables structured tracing with the given telemetry configuration.
    #[cfg(feature = "telemetry")]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            num_procs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            backend: Backend::default(),
            policies: PolicySet::paper().with_idle(PoolConfig::DEFAULT_IDLE),
            seed: 0xAB9,
            stack_size: 8 * 1024 * 1024,
            injector_shards: 0,
            sleep: SleepKind::default(),
            #[cfg(feature = "telemetry")]
            telemetry: None,
        }
    }
}

enum OwnerDeque {
    Abp(Worker<usize>),
    Growable(GrowableWorker<usize>),
    Lock(LockingDeque<usize>),
}

enum StealerSide {
    Abp(Stealer<usize>),
    Growable(GrowableStealer<usize>),
    Lock(LockingDeque<usize>),
}

impl StealerSide {
    fn steal(&self) -> Steal<usize> {
        match self {
            StealerSide::Abp(s) => s.pop_top(),
            StealerSide::Growable(s) => s.pop_top(),
            StealerSide::Lock(d) => d.pop_top(),
        }
    }

    /// Best-effort size, used by the pre-sleep re-scan. May be stale,
    /// but the sleep protocol's epoch CAS covers any job published
    /// concurrently with the scan.
    fn len_hint(&self) -> usize {
        match self {
            StealerSide::Abp(s) => s.len_hint(),
            StealerSide::Growable(s) => s.len_hint(),
            StealerSide::Lock(d) => d.len(),
        }
    }
}

pub(crate) struct Shared {
    stealers: Vec<StealerSide>,
    injector: Injector,
    shutdown: AtomicBool,
    sleep: Sleep,
    /// The pool's split cadence, read by [`crate::par`]'s splitter.
    split: SplitKind,
    pub(crate) stats: Vec<WorkerStats>,
    #[cfg(feature = "telemetry")]
    registry: Option<Arc<Registry>>,
}

impl Shared {
    /// Timestamp for an external submission (0 when tracing is off: the
    /// latency histogram is then skipped on the worker side). With
    /// tracing on, the stamp is clamped to at least 1ns so a submission
    /// landing exactly on the registry epoch can never be mistaken for
    /// the tracing-off sentinel (and silently dropped from the
    /// histogram).
    fn submit_ns(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            self.registry
                .as_ref()
                .map(|r| r.now_ns().max(1))
                .unwrap_or(0)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }

    /// Submits one external job through the sharded injector, then wakes
    /// at most one parked worker. Publish-then-notify order is what the
    /// sleep protocol requires (INV-EC-PUB): the notify's epoch bump is
    /// the barrier that makes this push visible to any worker racing
    /// into a park, so — unlike the old condvar protocol — no wakeup can
    /// be missed and no park timeout is needed to cap a race.
    fn inject(&self, job: JobRef) {
        self.injector.push(job.to_word(), self.submit_ns());
        self.notify_jobs(1);
    }

    /// Submits a batch under one shard lock, then wakes
    /// `min(batch_len, sleepers)` workers — one per job, never the herd.
    fn inject_batch(&self, words: &[usize]) {
        self.injector.push_batch(words, self.submit_ns());
        self.notify_jobs(words.len());
    }

    /// Producer-side wake for `n` just-published external jobs.
    /// External submitters have no worker timeline, so wake events are
    /// not traced here (the counters still move).
    fn notify_jobs(&self, n: usize) {
        match self.sleep.kind() {
            SleepKind::Eventcount => self.sleep.notify_jobs(n, |_| {}),
            SleepKind::CondvarFallback => self.sleep.fallback_notify_all(),
        }
    }

    /// Stamps the sleep scalar counters into a telemetry snapshot (the
    /// unpark-to-work histogram is already there; scalars live with the
    /// pool, like the injector's).
    #[cfg(feature = "telemetry")]
    fn stamp_sleep(&self, snap: &mut TelemetrySnapshot) {
        let s = self.sleep.stats();
        snap.sleep.wakes_sent = s.wakes_sent;
        snap.sleep.wakes_skipped = s.wakes_skipped;
        snap.sleep.wakes_spurious = s.wakes_spurious;
        snap.sleep.hits_after_unpark = s.hits_after_unpark;
        snap.sleep.timed_out_parks = s.timed_out_parks;
    }

    /// Stamps the data-parallel splitter counters into a telemetry
    /// snapshot as named counters, so both JSON exporters (the metrics
    /// dump and the Chrome trace) carry them.
    #[cfg(feature = "telemetry")]
    fn stamp_par(&self, snap: &mut TelemetrySnapshot) {
        let s = PoolStats::aggregate(&self.stats);
        snap.counters.push(("par_splits".to_string(), s.par_splits));
        snap.counters
            .push(("par_seq_fallbacks".to_string(), s.par_seq));
    }
}

/// Worker-thread-local context. A raw pointer to it lives in TLS while the
/// worker runs.
pub struct WorkerCtx {
    index: usize,
    deque: OwnerDeque,
    shared: Arc<Shared>,
    engine: RefCell<PolicyEngine>,
    /// True between returning from a wake-caused unpark and finding the
    /// first piece of work. Finding work converts it into a
    /// `hits_after_unpark`; committing back to sleep with it still set
    /// converts it into a `wakes_spurious`.
    woken_pending: Cell<bool>,
    /// Timestamp of the wake-caused unpark (0 when tracing is off),
    /// for the unpark-to-work latency histogram.
    woken_at: Cell<u64>,
    #[cfg(feature = "telemetry")]
    tele: Option<WorkerTelemetry>,
}

thread_local! {
    static CURRENT: Cell<*const WorkerCtx> = const { Cell::new(std::ptr::null()) };
}

/// The current worker context, if this thread is a pool worker.
pub(crate) fn current_worker<'a>() -> Option<&'a WorkerCtx> {
    let p = CURRENT.with(|c| c.get());
    if p.is_null() {
        None
    } else {
        // SAFETY: the pointer is set for exactly the lifetime of
        // worker_main's stack frame on this thread.
        Some(unsafe { &*p })
    }
}

impl WorkerCtx {
    /// Worker index within the pool.
    pub fn index(&self) -> usize {
        self.index
    }

    fn stats(&self) -> &WorkerStats {
        &self.shared.stats[self.index]
    }

    /// The pool's worker count `P`.
    pub(crate) fn num_procs(&self) -> usize {
        self.shared.stealers.len()
    }

    /// The pool's split cadence (the fifth policy axis).
    pub(crate) fn split_kind(&self) -> SplitKind {
        self.shared.split
    }

    /// Relaxed-load idle gauge for the adaptive splitter — see
    /// [`crate::sleep`]'s `sleepers_hint` for the race-tolerance
    /// argument.
    pub(crate) fn sleepers_hint(&self) -> usize {
        self.shared.sleep.sleepers_hint()
    }

    /// Counts one adaptive-splitter fork.
    pub(crate) fn note_par_split(&self) {
        self.stats().par_splits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one splittable range the splitter ran sequentially.
    pub(crate) fn note_par_seq(&self) {
        self.stats().par_seq.fetch_add(1, Ordering::Relaxed);
    }

    #[cfg(feature = "telemetry")]
    #[inline]
    fn tele_record(&self, kind: EventKind) {
        if let Some(t) = &self.tele {
            t.record(kind);
        }
    }

    /// `pushBottom`. Returns false if the (fixed-capacity) deque is full —
    /// the caller then runs the job inline instead.
    ///
    /// The spawn event is coarse-stamped (last clock read, usually the
    /// enclosing job's `ExecStart`) so the `join` fast path — push, run
    /// `a`, pop — never touches the clock.
    pub(crate) fn push(&self, job: JobRef) -> bool {
        #[cfg(feature = "telemetry")]
        if let Some(t) = &self.tele {
            t.record_coarse(EventKind::Spawn);
        }
        let pushed = match &self.deque {
            OwnerDeque::Abp(w) => w.push_bottom(job.to_word()).is_ok(),
            OwnerDeque::Growable(w) => {
                w.push_bottom(job.to_word());
                true
            }
            OwnerDeque::Lock(d) => {
                d.push_bottom(job.to_word());
                true
            }
        };
        if pushed {
            self.notify_push();
        }
        pushed
    }

    /// Producer-side wake after a successful `pushBottom`: with the
    /// eventcount, a relaxed peek at the sleep word (free while the pool
    /// is busy) and a targeted wake only when idlers are visible. A
    /// stale peek can miss a worker racing into a park, but this owner
    /// drains its own deque before idling, so the job still runs — the
    /// miss costs one scan of parallelism, never liveness (the external
    /// inject path, which has no such owner, always pays the barrier).
    /// The legacy condvar protocol never woke anyone here; the fallback
    /// keeps that behaviour.
    fn notify_push(&self) {
        match self.shared.sleep.kind() {
            SleepKind::Eventcount => {
                #[cfg(feature = "telemetry")]
                self.shared.sleep.notify_spawn(|ev| {
                    self.tele_record(match ev {
                        Some(target) => EventKind::WakeOne {
                            target: target as u32,
                        },
                        None => EventKind::WakeSkipped,
                    });
                });
                #[cfg(not(feature = "telemetry"))]
                self.shared.sleep.notify_spawn(|_| {});
            }
            SleepKind::CondvarFallback => {}
        }
    }

    /// Bookkeeping for work found anywhere (own pop, steal, injector):
    /// resets the policy engine's failure streak and, if this worker was
    /// recently woken, credits the wake and records its latency.
    pub(crate) fn note_found_work(&self) {
        self.engine.borrow_mut().note_work_found();
        if self.woken_pending.replace(false) {
            self.shared.sleep.note_hit_after_unpark();
            #[cfg(feature = "telemetry")]
            if let Some(t) = &self.tele {
                let woken_at = self.woken_at.get();
                if woken_at > 0 {
                    t.unpark_to_work_ns(t.now_ns().saturating_sub(woken_at));
                }
            }
        }
    }

    /// `popBottom`.
    pub(crate) fn pop(&self) -> Option<JobRef> {
        let w = match &self.deque {
            OwnerDeque::Abp(w) => w.pop_bottom(),
            OwnerDeque::Growable(w) => w.pop_bottom(),
            OwnerDeque::Lock(d) => d.pop_bottom(),
        };
        w.map(JobRef::from_word)
    }

    /// Executes `job` and maintains the job counter, the job-run-time
    /// histogram, and the `ExecStart`/`ExecEnd` trace span. Every job the
    /// scheduler runs goes through here so counts and traces agree.
    pub(crate) fn execute_job(&self, job: JobRef) {
        #[cfg(feature = "telemetry")]
        let started = self.tele.as_ref().map(|t| {
            let now = t.now_ns();
            t.record_at(now, EventKind::ExecStart);
            now
        });
        unsafe { job.execute() };
        self.stats().jobs.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "telemetry")]
        if let (Some(t), Some(t0)) = (self.tele.as_ref(), started) {
            let now = t.now_ns();
            t.job_run_ns(now.saturating_sub(t0));
            t.record_at(now, EventKind::ExecEnd);
        }
    }

    /// The paper's `yield` between steal scans (§4.4).
    fn do_yield(&self) {
        self.stats().yields.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "telemetry")]
        self.tele_record(EventKind::Yield);
        std::thread::yield_now();
    }

    /// Records one completed steal attempt everywhere it is counted —
    /// stats outcome counter, telemetry event, steal-latency sample, and
    /// the policy engine's victim feedback. One function so the three
    /// outcome branches cannot drift apart again.
    fn note_steal(&self, victim: usize, result: StealResult, scan_start_ns: Option<u64>) {
        let stats = self.stats();
        match result {
            StealResult::Hit => stats.steals.fetch_add(1, Ordering::Relaxed),
            StealResult::Abort => stats.aborts.fetch_add(1, Ordering::Relaxed),
            StealResult::Empty => stats.empties.fetch_add(1, Ordering::Relaxed),
        };
        #[cfg(feature = "telemetry")]
        if let Some(t) = self.tele.as_ref() {
            let now = t.now_ns();
            if result == StealResult::Hit {
                // Steal latency: scan start → successful grab.
                t.steal_latency_ns(now.saturating_sub(scan_start_ns.unwrap_or(now)));
            }
            t.record_at(
                now,
                EventKind::StealAttempt {
                    victim: victim as u32,
                    outcome: match result {
                        StealResult::Hit => StealOutcome::Hit,
                        StealResult::Abort => StealOutcome::Abort,
                        StealResult::Empty => StealOutcome::Empty,
                    },
                },
            );
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = scan_start_ns;
        self.engine.borrow_mut().observe(victim, result);
    }

    /// One counted, non-blocking poll of the external-submission
    /// injector. A grab counts as an `inject`; a miss (empty or
    /// contended) counts as an `empty` — either way exactly one outcome
    /// per attempt, so the accounting identity extends to the new path.
    pub(crate) fn poll_injector(&self) -> Option<JobRef> {
        let stats = self.stats();
        stats.steal_attempts.fetch_add(1, Ordering::Relaxed);
        match self.shared.injector.poll(self.index) {
            Some((word, submit_ns)) => {
                stats.injects.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "telemetry")]
                if let Some(t) = &self.tele {
                    let now = t.now_ns();
                    if submit_ns > 0 {
                        t.inject_latency_ns(now.saturating_sub(submit_ns));
                    }
                    t.record_at(now, EventKind::InjectorPoll { hit: true });
                }
                #[cfg(not(feature = "telemetry"))]
                let _ = submit_ns;
                Some(JobRef::from_word(word))
            }
            None => {
                stats.empties.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "telemetry")]
                self.tele_record(EventKind::InjectorPoll { hit: false });
                None
            }
        }
    }

    /// One full steal scan: backoff (per policy), then try `P − 1`
    /// victims in the selector's order, then — when the inject policy
    /// says the poll is due and the injector is non-empty — the
    /// injector.
    pub(crate) fn find_distant_work(&self) -> Option<JobRef> {
        let shared = &*self.shared;
        match self.engine.borrow_mut().backoff_action() {
            BackoffAction::Proceed => {}
            BackoffAction::Yield => self.do_yield(),
            BackoffAction::Spin(n) => {
                for _ in 0..n {
                    std::hint::spin_loop();
                }
            }
            BackoffAction::SpinThenYield(n) => {
                for _ in 0..n {
                    std::hint::spin_loop();
                }
                self.do_yield();
            }
        }
        #[cfg(feature = "telemetry")]
        let scan_start = self.tele.as_ref().map(|t| t.now_ns());
        #[cfg(not(feature = "telemetry"))]
        let scan_start = None;
        let n = shared.stealers.len();
        if n > 1 {
            self.engine.borrow_mut().begin_scan(self.index, n);
            for _ in 0..n - 1 {
                let v = self.engine.borrow_mut().next_victim(self.index, n);
                self.stats().steal_attempts.fetch_add(1, Ordering::Relaxed);
                let result = match shared.stealers[v].steal() {
                    Steal::Taken(w) => {
                        self.note_steal(v, StealResult::Hit, scan_start);
                        return Some(JobRef::from_word(w));
                    }
                    Steal::Abort => StealResult::Abort,
                    Steal::Empty => StealResult::Empty,
                };
                self.note_steal(v, result, scan_start);
            }
        }
        if shared.injector.pending() > 0 && self.engine.borrow_mut().injector_due() {
            return self.poll_injector();
        }
        None
    }

    /// True if any source this worker could take work from looks
    /// non-empty: the shutdown flag (which also demands wakefulness),
    /// the injector, or any *other* worker's deque. Our own deque is
    /// known empty — the caller just failed a `popBottom`.
    fn work_in_sight(&self) -> bool {
        let shared = &*self.shared;
        shared.shutdown.load(Ordering::Acquire)
            || shared.injector.pending() > 0
            || shared
                .stealers
                .iter()
                .enumerate()
                .any(|(v, s)| v != self.index && s.len_hint() > 0)
    }

    /// Parks this worker until a producer's wake (`timeout == None`, the
    /// [`IdleAction::ParkUntilWake`] policy) or for a bounded nap
    /// (`Some`, the legacy [`IdleAction::Park`] policy). May return
    /// without parking at all when the sleep protocol detects work.
    ///
    /// Eventcount path — the three-step protocol from [`crate::sleep`]:
    /// announce, re-scan every work source, then commit via the
    /// epoch-checked CAS; a producer that publishes anywhere in between
    /// either fails the commit or (once committed) is obliged to wake us.
    /// Park/unpark counters and trace spans move only for *committed*
    /// parks, so `parks == unparks` holds exactly at shutdown.
    fn park(&self, timeout: Option<Duration>) {
        let shared = &*self.shared;
        match shared.sleep.kind() {
            SleepKind::Eventcount => {
                let token = shared.sleep.announce();
                if self.work_in_sight() {
                    shared.sleep.cancel_announce();
                    return;
                }
                if !shared.sleep.try_commit(self.index, token) {
                    // A producer moved the epoch after our re-scan began;
                    // its work is visible now — resume hunting.
                    return;
                }
                if self.woken_pending.replace(false) {
                    // Woken last time but found nothing before sleeping
                    // again: that wake bought no work.
                    shared.sleep.note_spurious_wake();
                }
                self.stats().parks.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "telemetry")]
                self.tele_record(EventKind::Park);
                let outcome = shared.sleep.park_committed(self.index, timeout);
                self.note_unpark(outcome);
            }
            SleepKind::CondvarFallback => {
                if self.woken_pending.replace(false) {
                    shared.sleep.note_spurious_wake();
                }
                self.stats().parks.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "telemetry")]
                self.tele_record(EventKind::Park);
                // The legacy protocol: pool-wide lock, re-check under it,
                // bounded nap (even for the untimed policy — without the
                // eventcount a wakeup genuinely can be missed, and the
                // timeout is what caps that race).
                let outcome = shared.sleep.fallback_park(timeout, || {
                    shared.injector.pending() > 0 || shared.shutdown.load(Ordering::Acquire)
                });
                self.note_unpark(outcome);
            }
        }
    }

    fn note_unpark(&self, outcome: SleepOutcome) {
        self.stats().unparks.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "telemetry")]
        self.tele_record(EventKind::Unpark);
        if outcome == SleepOutcome::Woken {
            self.woken_pending.set(true);
            #[cfg(feature = "telemetry")]
            self.woken_at
                .set(self.tele.as_ref().map_or(0, |t| t.now_ns()));
        }
    }

    /// Executes other work (or yields) while waiting for `probe` to become
    /// true; used by `join` when its second operand was stolen, and by
    /// scopes. Never parks: a waiting worker keeps contributing.
    pub(crate) fn wait_until(&self, probe: impl Fn() -> bool) {
        while !probe() {
            if let Some(job) = self.pop().or_else(|| self.find_distant_work()) {
                self.execute_job(job);
            }
        }
    }
}

fn worker_main(ctx: WorkerCtx) {
    CURRENT.with(|c| c.set(&ctx as *const WorkerCtx));
    let shared = Arc::clone(&ctx.shared);
    loop {
        let job = ctx.pop().or_else(|| ctx.find_distant_work());
        match job {
            Some(job) => {
                ctx.note_found_work();
                ctx.execute_job(job);
            }
            None => {
                if shared.shutdown.load(Ordering::Acquire) {
                    // Drain the front door before exiting so every
                    // accepted external submission still runs exactly
                    // once. Blocking pops: during shutdown a `None`
                    // must really mean empty.
                    if let Some((word, _)) = shared.injector.pop_blocking(ctx.index) {
                        ctx.note_found_work();
                        ctx.execute_job(JobRef::from_word(word));
                        continue;
                    }
                    break;
                }
                let action = {
                    let mut engine = ctx.engine.borrow_mut();
                    engine.note_failed();
                    engine.idle_action()
                };
                let parked = match action {
                    IdleAction::Steal => false,
                    IdleAction::Park(us) => {
                        ctx.park(Some(Duration::from_micros(us as u64)));
                        true
                    }
                    IdleAction::ParkUntilWake => {
                        ctx.park(None);
                        true
                    }
                };
                if parked {
                    // A wake-up usually means an external submission;
                    // poll unconditionally (counted) so even an
                    // `InjectKind::Never` ablation drains the front
                    // door after parking.
                    if let Some(job) = ctx.poll_injector() {
                        ctx.note_found_work();
                        ctx.execute_job(job);
                    }
                }
            }
        }
    }
    CURRENT.with(|c| c.set(std::ptr::null()));
}

/// What [`ThreadPool::shutdown`] returns: final statistics gathered
/// *after* every worker has exited, so no counter or trace can still be
/// moving underneath the caller.
#[derive(Debug)]
pub struct PoolReport {
    /// Aggregate counters over the pool's whole life.
    pub stats: PoolStats,
    /// The same counters, per worker.
    pub per_worker: Vec<PoolStats>,
    /// Which sleep/wake backend the pool ran.
    pub sleep_kind: SleepKind,
    /// Sleep/wake-subsystem counters over the pool's whole life.
    pub sleep: SleepStats,
    /// The final telemetry snapshot, if tracing was configured.
    #[cfg(feature = "telemetry")]
    pub telemetry: Option<TelemetrySnapshot>,
}

/// A work-stealing thread pool in the spirit of the authors' Hood library.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool with `num_procs` workers and default configuration.
    pub fn new(num_procs: usize) -> Self {
        Self::with_config(PoolConfig {
            num_procs,
            ..PoolConfig::default()
        })
    }

    /// A pool with explicit configuration.
    pub fn with_config(config: PoolConfig) -> Self {
        assert!(config.num_procs >= 1);
        let p = config.num_procs;
        let mut owners = Vec::with_capacity(p);
        let mut stealers = Vec::with_capacity(p);
        for _ in 0..p {
            match config.backend {
                Backend::Abp { capacity } => {
                    let (w, s) = abp_deque::new::<usize>(capacity);
                    owners.push(OwnerDeque::Abp(w));
                    stealers.push(StealerSide::Abp(s));
                }
                Backend::AbpGrowable { initial_capacity } => {
                    let (w, s) = abp_deque::new_growable::<usize>(initial_capacity);
                    owners.push(OwnerDeque::Growable(w));
                    stealers.push(StealerSide::Growable(s));
                }
                Backend::Locking => {
                    let d = LockingDeque::new();
                    stealers.push(StealerSide::Lock(d.clone()));
                    owners.push(OwnerDeque::Lock(d));
                }
            }
        }
        #[cfg(feature = "telemetry")]
        let registry = config
            .telemetry
            .as_ref()
            .map(|tc| Registry::with_policy(p, tc, config.policies.label()));
        let shared = Arc::new(Shared {
            stealers,
            injector: Injector::new(if config.injector_shards == 0 {
                p
            } else {
                config.injector_shards
            }),
            shutdown: AtomicBool::new(false),
            sleep: Sleep::new(p, config.sleep),
            split: config.policies.split,
            stats: (0..p).map(|_| WorkerStats::default()).collect(),
            #[cfg(feature = "telemetry")]
            registry,
        });
        let mut seed_rng = DetRng::new(config.seed);
        let handles = owners
            .into_iter()
            .enumerate()
            .map(|(index, deque)| {
                let ctx = WorkerCtx {
                    index,
                    deque,
                    shared: Arc::clone(&shared),
                    engine: RefCell::new(PolicyEngine::new(
                        &config.policies,
                        PolicyRng::from_det(seed_rng.fork(index as u64)),
                    )),
                    woken_pending: Cell::new(false),
                    woken_at: Cell::new(0),
                    #[cfg(feature = "telemetry")]
                    tele: shared.registry.as_ref().map(|r| r.worker(index)),
                };
                std::thread::Builder::new()
                    .name(format!("hood-worker-{index}"))
                    .stack_size(config.stack_size)
                    .spawn(move || worker_main(ctx))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// The process count `P`.
    pub fn num_procs(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f` inside the pool (so that [`crate::join()`](crate::join::join) and
    /// [`crate::scope()`](crate::scope::scope) parallelize) and returns its result. Blocks the
    /// calling thread until done. If already on a worker thread of this
    /// pool, runs `f` directly.
    ///
    /// Calling this from a worker thread of a *different* pool blocks
    /// that worker (it sleeps rather than work-steals) — mutual
    /// cross-pool installs can therefore deadlock, exactly as in other
    /// work-stealing runtimes. Prefer one pool, or acyclic pool
    /// dependencies.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some(w) = current_worker() {
            if Arc::ptr_eq(&w.shared, &self.shared) {
                return f();
            }
        }
        let result: Mutex<Option<std::thread::Result<R>>> = Mutex::new(None);
        let latch = LockLatch::new();
        {
            // SAFETY: we block on `latch` before leaving this scope, so
            // every borrow the job captures outlives its execution, and
            // the injector hands the job to exactly one worker.
            let job = unsafe {
                crate::job::HeapJob::into_job_ref(|| {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    *result.lock().unwrap() = Some(r);
                    latch.set();
                })
            };
            self.shared.inject(job);
            latch.wait();
        }
        match result
            .into_inner()
            .unwrap()
            .expect("install job did not produce a result")
        {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Submits `f` for execution from *any* thread — the pool's front
    /// door. Returns immediately; the job runs on whichever worker
    /// grabs it from the sharded injector. Fire-and-forget: use
    /// [`ThreadPool::install`] (or channels/latches inside `f`) when
    /// the caller needs the result. Jobs accepted before
    /// [`ThreadPool::shutdown`] returns are guaranteed to execute
    /// exactly once (workers drain the injector before exiting, and
    /// `shutdown` itself runs any straggler that slipped in after the
    /// last worker's final sweep — nothing is leaked).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        // SAFETY: the closure is 'static and the injector/worker
        // protocol executes each submitted job exactly once (each entry
        // is popped by exactly one worker, and shutdown drains leftovers).
        let job = unsafe { crate::job::HeapJob::into_job_ref(f) };
        self.shared.inject(job);
    }

    /// Submits a batch of jobs under a single injector shard lock — the
    /// cheap way for one client to submit many jobs at once. Same
    /// semantics per job as [`ThreadPool::spawn`].
    pub fn spawn_batch<I, F>(&self, jobs: I)
    where
        I: IntoIterator<Item = F>,
        F: FnOnce() + Send + 'static,
    {
        let words: Vec<usize> = jobs
            .into_iter()
            // SAFETY: as in `spawn` — exactly-once execution of each ref.
            .map(|f| unsafe { crate::job::HeapJob::into_job_ref(f) }.to_word())
            .collect();
        self.shared.inject_batch(&words);
    }

    /// Jobs submitted from outside and not yet picked up by a worker.
    pub fn injector_backlog(&self) -> usize {
        self.shared.injector.pending()
    }

    /// Number of shards the front-door injector was built with.
    pub fn injector_shards(&self) -> usize {
        self.shared.injector.shard_count()
    }

    /// Aggregate scheduler statistics since pool creation.
    pub fn stats(&self) -> PoolStats {
        PoolStats::aggregate(&self.shared.stats)
    }

    /// Per-worker scheduler statistics since pool creation.
    pub fn per_worker_stats(&self) -> Vec<PoolStats> {
        self.shared.stats.iter().map(|w| w.snapshot()).collect()
    }

    /// Which sleep/wake backend this pool runs.
    pub fn sleep_kind(&self) -> SleepKind {
        self.shared.sleep.kind()
    }

    /// Workers currently asleep (a live gauge: exact at quiescence).
    pub fn sleeping_workers(&self) -> usize {
        self.shared.sleep.sleepers()
    }

    /// The adaptive splitter's idle gauge: committed-plus-announcing
    /// sleepers from one `Relaxed` load of the sleep subsystem's packed
    /// eventcount word. Cheap enough to poll from hot loops; may lag
    /// in-flight transitions by a scan (see [`crate::sleep`]).
    pub fn sleepers_hint(&self) -> usize {
        self.shared.sleep.sleepers_hint()
    }

    /// Live sleep/wake-subsystem counters since pool creation.
    pub fn sleep_stats(&self) -> SleepStats {
        self.shared.sleep.stats()
    }

    /// A live telemetry snapshot, if tracing was configured. Workers keep
    /// running (and recording) while this executes; for counts that must
    /// be exact, stop the pool with [`ThreadPool::shutdown`] instead.
    #[cfg(feature = "telemetry")]
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.shared.registry.as_ref().map(|r| {
            let mut snap = r.snapshot();
            self.shared.injector.stamp(&mut snap.injector);
            self.shared.stamp_sleep(&mut snap);
            self.shared.stamp_par(&mut snap);
            snap
        })
    }

    /// Stops the pool (joining every worker) and returns the final,
    /// quiescent statistics and telemetry. Unlike [`ThreadPool::stats`] /
    /// [`ThreadPool::telemetry_snapshot`], nothing can race this: the
    /// trace, the per-worker counters, and the aggregate are mutually
    /// consistent.
    pub fn shutdown(mut self) -> PoolReport {
        // Flag first, wake second: `notify_shutdown`'s epoch bump makes
        // the flag visible to any worker racing into a park (its commit
        // fails or its wake arrives), so no worker can sleep through
        // shutdown.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.sleep.notify_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Workers drain the injector before exiting, but a submission
        // racing the shutdown flag could in principle land after the
        // last worker's final sweep. Run (not leak) any stragglers here
        // — every accepted job executes exactly once. Workers are gone,
        // so this thread is the only consumer.
        while let Some((word, _)) = self.shared.injector.pop_blocking(0) {
            // SAFETY: the word came out of the injector exactly once,
            // so this is the job's single execution.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                JobRef::from_word(word).execute()
            }));
        }
        let stats = self.stats();
        debug_assert!(
            stats.attempts_balance(),
            "steal accounting identity violated: {stats:?}"
        );
        debug_assert!(
            stats.parks_balance(),
            "park accounting identity violated: parks {} != unparks {}",
            stats.parks,
            stats.unparks
        );
        let sleep = self.shared.sleep.stats();
        // Every hit-after-unpark is credited to exactly one delivered
        // wake (the condvar fallback's herd makes the correspondence
        // approximate, so the invariant is eventcount-only).
        debug_assert!(
            self.shared.sleep.kind() != SleepKind::Eventcount
                || sleep.wakes_sent >= sleep.hits_after_unpark,
            "wake accounting identity violated: {sleep:?}"
        );
        PoolReport {
            stats,
            per_worker: self.per_worker_stats(),
            sleep_kind: self.shared.sleep.kind(),
            sleep,
            #[cfg(feature = "telemetry")]
            telemetry: self.shared.registry.as_ref().map(|r| {
                let mut snap = r.snapshot();
                self.shared.injector.stamp(&mut snap.injector);
                self.shared.stamp_sleep(&mut snap);
                self.shared.stamp_par(&mut snap);
                snap
            }),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.sleep.notify_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
