//! The thread pool: `P` worker threads ("processes" in the paper's
//! vocabulary), one deque each, randomized stealing, and yields
//! between steal attempts.
//!
//! The scheduling loop follows Figure 3: a worker executes its assigned
//! job; completed jobs are replaced by popping the bottom of its own
//! deque; an empty deque turns the worker into a thief that backs off,
//! picks a victim, and tries `popTop` on the victim's deque. The three
//! policy points of that loop — victim selection (line 16), contention
//! backoff (line 15), and what a persistently idle worker does — are
//! pluggable via [`PoolConfig::policies`] (an [`abp_core::PolicySet`]);
//! the default is the paper's uniform-random victim and yield, plus
//! parking a completely idle worker so an idle pool does not burn CPU.
//! Parking goes through the [`crate::sleep`] eventcount, whose
//! announce/re-scan/commit protocol closes the missed-wakeup race by
//! construction — so the default park is *untimed*
//! ([`IdleKind::ParkUntilWake`]) and producers wake exactly
//! `min(jobs, sleepers)` workers instead of the whole pool. All
//! inter-worker synchronization is non-blocking (the deque) except that
//! optional parking, which never holds locks around work, so it cannot
//! reintroduce the preemption pathology the paper's non-blocking design
//! eliminates.
//!
//! # The deque seam
//!
//! Which deque implements `pushBottom`/`popBottom`/`popTop` is the
//! ablation axis for the paper's "non-blocking data structures are
//! essential" claim, and it is selected *per pool* through the
//! [`abp_deque::TaskDeque`] trait: [`ThreadPool::with_config`]
//! dispatches once on [`PoolConfig::backend`] and spawns worker loops
//! monomorphized over the chosen backend ([`Shared`]`<B>` /
//! [`WorkerCtx`]`<B>` / `worker_main::<B>`), so the scheduling hot path
//! compiles down to direct calls exactly as the old hand-rolled enum
//! did. Everything backend-independent (injector, sleep subsystem,
//! stats, telemetry registry, shutdown flag) lives in the non-generic
//! [`SharedCore`], which is also what the non-generic [`ThreadPool`]
//! handle holds. Code that runs *on* a worker but cannot name the
//! backend type (`join`, `scope`, the data-parallel layer) reaches the
//! current worker through the object-safe [`AnyWorker`] facade in TLS —
//! one virtual call per operation, off the deque's own fast path.
//!
//! Multiplicity-relaxed backends ([`abp_deque::FenceFreeBackend`])
//! report extraction races as [`Steal::Duplicate`]: the worker counts
//! the outcome (`duplicates` in [`crate::stats::PoolStats`], a
//! `steal_duplicate` telemetry event) and treats it like a miss. Exact
//! backends never produce it, and never-aborting backends never produce
//! `Abort` — both structural zeros are asserted per backend at
//! [`ThreadPool::shutdown`], alongside the five-way accounting identity
//! `attempts == hits + aborts + empties + injects + duplicates`.
//!
//! # Federation (the topology layer)
//!
//! [`PoolConfig::pools`] partitions the `P` workers into `K` pools
//! ("sockets"): contiguous index blocks, each with its **own** sharded
//! injector, its own sleep subsystem, and a steal-back hint
//! ([`PoolShard`]). Victim selection becomes hierarchical in the sense
//! of localized work stealing (Suksompong/Leiserson/Schardl): a thief
//! scans its pool-mates first (the policy engine runs in pool-local
//! coordinates, so any [`abp_core::VictimKind`] composes), then — with
//! probability [`PoolConfig::cross_steal`] per empty-handed scan — makes
//! one cross-pool attempt, preferring the *steal-back* target (the
//! remote worker that most recently took this pool's work) over a
//! uniformly random remote victim. External submissions route to a pool
//! by sticky client affinity (the PR-3 round-robin shard cursor, lifted
//! one level), and each pool's own workers drain their own front door
//! before ever going remote, so a pool's externally submitted work is
//! served — stolen back — by the pool that owns it. Cross-pool hits are
//! counted as `remote_steals` (`steals = local + remote`, outside the
//! five-way identity, structurally zero at `K = 1` and asserted so at
//! shutdown). With `K == 1` every one of these paths collapses to the
//! flat pool byte-for-byte: same draws, same scan order, same wakes.
//! [`PoolConfig::flat_scan`] keeps the `K > 1` topology but scans all
//! `P − 1` victims globally — the measured baseline federation is
//! compared against (experiment FD1).
//!
//! With the `telemetry` feature (on by default) a pool can additionally
//! record a structured event trace — spawns, job spans, every steal
//! attempt with its outcome, yields, parks — into per-worker lock-free
//! rings (see [`abp_telemetry`]). Tracing is also gated at *runtime*: it
//! is off unless [`PoolConfig::telemetry`] is `Some`, and when off each
//! instrumentation point costs one branch on an `Option`.

use crate::injector::Injector;
use crate::job::JobRef;
use crate::latch::LockLatch;
use crate::sleep::{Sleep, SleepKind, SleepOutcome, SleepStats};
use crate::stats::{PoolStats, WorkerStats};
use abp_core::{
    BackoffAction, BatchKind, IdleAction, IdleKind, PolicyEngine, PolicyRng, PolicySet, SplitKind,
    StealResult,
};
use abp_dag::DetRng;
use abp_deque::{
    AbpBackend, DequeOwner, DequeStealer, FenceFreeBackend, GrowableBackend, LockingBackend,
    PushError, Steal, StolenBatch, TaskDeque,
};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[cfg(feature = "telemetry")]
use abp_telemetry::{EventKind, Registry, StealOutcome, WorkerTelemetry};
#[cfg(feature = "telemetry")]
pub use abp_telemetry::{TelemetryConfig, TelemetrySnapshot};

/// Which deque implementation backs each worker — the ablation axis for
/// the paper's "non-blocking data structures are essential" claim, plus
/// the fence-free relaxation axis. Each variant names one
/// [`abp_deque::TaskDeque`] descriptor; [`ThreadPool::with_config`]
/// monomorphizes the worker loops over it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The non-blocking ABP deque with the given (fixed) array capacity.
    /// On overflow, jobs run inline — correct, just less parallel.
    Abp { capacity: usize },
    /// The growable ABP deque (retire-list buffers): never overflows.
    AbpGrowable { initial_capacity: usize },
    /// A mutex-protected deque.
    Locking,
    /// The fence-free read/write deque with multiplicity: no `cas` and
    /// no fence on the steal fast path, at the cost of rare
    /// [`Steal::Duplicate`] outcomes (counted, never executed twice).
    FenceFree { capacity: usize },
}

impl Default for Backend {
    /// The ABP deque — unless the `HOOD_BACKEND` environment variable
    /// names another backend (`abp`, `abp-growable`, `locking`,
    /// `fence-free`). That hook is how CI's backend matrix re-runs the
    /// unchanged integration suites against each backend: every pool
    /// built from `PoolConfig::default()` picks up the selection, while
    /// explicit `with_deque`/`with_backend` calls are unaffected. An
    /// unrecognized value panics rather than silently testing the wrong
    /// backend.
    fn default() -> Self {
        match std::env::var_os("HOOD_BACKEND") {
            Some(name) => match name.to_str() {
                Some(name) => Backend::parse(name),
                // A non-unicode value is as much a matrix typo as an
                // unknown name — refuse it too instead of silently
                // testing ABP.
                None => panic!(
                    "HOOD_BACKEND={name:?} is not valid unicode: expected abp, abp-growable, \
                     locking, or fence-free"
                ),
            },
            None => Backend::Abp { capacity: 1 << 15 },
        }
    }
}

impl Backend {
    /// Resolves a backend from its `HOOD_BACKEND` spelling (`abp`,
    /// `abp-growable`, `locking`, `fence-free`; empty means the
    /// default). Panics on anything else, listing the valid names — a CI
    /// matrix typo must fail loudly, never silently test the wrong
    /// backend.
    pub fn parse(name: &str) -> Backend {
        match name {
            "" | "abp" => Backend::Abp { capacity: 1 << 15 },
            "abp-growable" => Backend::AbpGrowable {
                initial_capacity: 64,
            },
            "locking" => Backend::Locking,
            "fence-free" => Backend::FenceFree { capacity: 1 << 15 },
            other => {
                panic!("HOOD_BACKEND={other:?}: expected abp, abp-growable, locking, or fence-free")
            }
        }
    }
    /// The backend's stable short label ([`TaskDeque::NAME`]).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Abp { .. } => <AbpBackend as TaskDeque<usize>>::NAME,
            Backend::AbpGrowable { .. } => <GrowableBackend as TaskDeque<usize>>::NAME,
            Backend::Locking => <LockingBackend as TaskDeque<usize>>::NAME,
            Backend::FenceFree { .. } => <FenceFreeBackend as TaskDeque<usize>>::NAME,
        }
    }

    /// Whether this backend's `popTop` can return [`Steal::Abort`]
    /// ([`TaskDeque::CAN_ABORT`]). When false the pool asserts
    /// `aborts == 0` at shutdown.
    pub fn can_abort(self) -> bool {
        match self {
            Backend::Abp { .. } => <AbpBackend as TaskDeque<usize>>::CAN_ABORT,
            Backend::AbpGrowable { .. } => <GrowableBackend as TaskDeque<usize>>::CAN_ABORT,
            Backend::Locking => <LockingBackend as TaskDeque<usize>>::CAN_ABORT,
            Backend::FenceFree { .. } => <FenceFreeBackend as TaskDeque<usize>>::CAN_ABORT,
        }
    }

    /// Whether extraction is exactly-once at the deque interface
    /// ([`TaskDeque::EXACT`]). When true the pool asserts
    /// `duplicates == 0` at shutdown.
    pub fn exact(self) -> bool {
        match self {
            Backend::Abp { .. } => <AbpBackend as TaskDeque<usize>>::EXACT,
            Backend::AbpGrowable { .. } => <GrowableBackend as TaskDeque<usize>>::EXACT,
            Backend::Locking => <LockingBackend as TaskDeque<usize>>::EXACT,
            Backend::FenceFree { .. } => <FenceFreeBackend as TaskDeque<usize>>::EXACT,
        }
    }
}

impl From<AbpBackend> for Backend {
    fn from(b: AbpBackend) -> Backend {
        Backend::Abp {
            capacity: b.capacity,
        }
    }
}

impl From<GrowableBackend> for Backend {
    fn from(b: GrowableBackend) -> Backend {
        Backend::AbpGrowable {
            initial_capacity: b.initial_capacity,
        }
    }
}

impl From<LockingBackend> for Backend {
    fn from(_: LockingBackend) -> Backend {
        Backend::Locking
    }
}

impl From<FenceFreeBackend> for Backend {
    fn from(b: FenceFreeBackend) -> Backend {
        Backend::FenceFree {
            capacity: b.capacity,
        }
    }
}

/// Pool construction parameters.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of worker threads (the paper's fixed process count `P`).
    pub num_procs: usize,
    pub backend: Backend,
    /// The scheduling-policy set (victim selection, contention backoff,
    /// idle behaviour). The default is the paper's policy with Hood's
    /// engineering compromise on the idle axis: uniform victims, a yield
    /// between failed steal scans, and parking (100 µs timeout) after 64
    /// consecutive failed scans so an idle pool does not burn CPU.
    pub policies: PolicySet,
    /// Seed for victim selection.
    pub seed: u64,
    /// Worker thread stack size in bytes. Work stealing executes stolen
    /// jobs on the thief's stack ("leapfrogging"), so deep recursive
    /// workloads need headroom beyond the platform default.
    pub stack_size: usize,
    /// Shards in each pool's external-submission injector; `0` (the
    /// default) sizes each to its pool's worker count.
    pub injector_shards: usize,
    /// Number of pools ("sockets") the workers are partitioned into —
    /// the topology layer. `1` (the default) is the classic flat pool;
    /// `K > 1` splits the workers into `K` contiguous blocks, each with
    /// its own injector shard-set, sleep subsystem, and local-first
    /// victim scans. Must satisfy `1 ≤ pools ≤ num_procs`.
    pub pools: usize,
    /// Probability that an empty-handed hierarchical steal scan follows
    /// its local pass with one cross-pool attempt. Only consulted when
    /// `pools > 1` and `flat_scan` is off, so the flat pool draws no
    /// extra randomness.
    pub cross_steal: f64,
    /// Baseline switch for experiments: keep the `K > 1` topology
    /// (per-pool injectors, sleep, accounting) but scan all `P − 1`
    /// victims globally, exactly like the flat pool. Remote steals are
    /// still *counted*, just not avoided — the control FD1 measures
    /// hierarchical stealing against.
    pub flat_scan: bool,
    /// Which sleep/wake implementation idle workers park through. The
    /// default tracks the `sleep-condvar-fallback` feature: the
    /// eventcount normally, the legacy pool-wide condvar under the
    /// feature (the measurable baseline for experiment ID1).
    pub sleep: SleepKind,
    /// Structured tracing: `Some(config)` records events and histograms
    /// into per-worker rings; `None` (the default) records nothing and
    /// leaves only an untaken branch at each instrumentation point.
    #[cfg(feature = "telemetry")]
    pub telemetry: Option<TelemetryConfig>,
}

impl PoolConfig {
    /// The default idle policy: park *untimed* after 64 consecutive
    /// failed steal scans and stay asleep until a producer's wake. Sound
    /// because the eventcount closes the missed-wakeup race (and the
    /// condvar fallback substitutes its legacy 100 µs bounded nap for
    /// the untimed park, so the policy is safe under both backends).
    pub const DEFAULT_IDLE: IdleKind = IdleKind::ParkUntilWake { threshold: 64 };

    /// Replaces the worker count.
    pub fn with_num_procs(mut self, num_procs: usize) -> Self {
        self.num_procs = num_procs;
        self
    }

    /// Replaces the deque backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the deque backend from its [`TaskDeque`] descriptor —
    /// the typed spelling of [`PoolConfig::with_backend`]:
    ///
    /// ```
    /// use abp_deque::FenceFreeBackend;
    /// use hood::PoolConfig;
    /// let cfg = PoolConfig::default().with_deque(FenceFreeBackend { capacity: 1 << 12 });
    /// ```
    pub fn with_deque(mut self, deque: impl Into<Backend>) -> Self {
        self.backend = deque.into();
        self
    }

    /// Replaces the scheduling-policy set.
    pub fn with_policies(mut self, policies: PolicySet) -> Self {
        self.policies = policies;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the worker stack size.
    pub fn with_stack_size(mut self, stack_size: usize) -> Self {
        self.stack_size = stack_size;
        self
    }

    /// Replaces the injector shard count (`0` = one shard per worker).
    pub fn with_injector_shards(mut self, injector_shards: usize) -> Self {
        self.injector_shards = injector_shards;
        self
    }

    /// Partitions the workers into `pools` pools ("sockets").
    pub fn with_pools(mut self, pools: usize) -> Self {
        self.pools = pools;
        self
    }

    /// Replaces the cross-pool steal probability.
    ///
    /// # Panics
    ///
    /// If `cross_steal` is NaN or outside `[0.0, 1.0]` — a coin with a
    /// probability outside the unit interval is always a caller bug,
    /// and the policy coin would otherwise silently clamp it.
    pub fn with_cross_steal(mut self, cross_steal: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&cross_steal),
            "cross_steal must be a probability in [0.0, 1.0], got {cross_steal}"
        );
        self.cross_steal = cross_steal;
        self
    }

    /// Enables the flat-scan baseline (global victim scans on a `K > 1`
    /// topology).
    pub fn with_flat_scan(mut self, flat_scan: bool) -> Self {
        self.flat_scan = flat_scan;
        self
    }

    /// Replaces the sleep/wake backend.
    pub fn with_sleep(mut self, sleep: SleepKind) -> Self {
        self.sleep = sleep;
        self
    }

    /// Enables structured tracing with the given telemetry configuration.
    #[cfg(feature = "telemetry")]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            num_procs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            backend: Backend::default(),
            policies: PolicySet::paper().with_idle(PoolConfig::DEFAULT_IDLE),
            seed: 0xAB9,
            stack_size: 8 * 1024 * 1024,
            injector_shards: 0,
            pools: 1,
            cross_steal: 0.125,
            flat_scan: false,
            sleep: SleepKind::default(),
            #[cfg(feature = "telemetry")]
            telemetry: None,
        }
    }
}

/// One pool ("socket") of the federated topology: a contiguous block of
/// workers with a private front door, a private sleep subsystem, and
/// the steal-back hint of the localized-work-stealing model. A flat
/// pool is exactly one of these spanning every worker.
pub(crate) struct PoolShard {
    /// Global worker indices `[start, end)` belong to this pool.
    start: usize,
    end: usize,
    /// This pool's sharded external-submission injector.
    injector: Injector,
    /// This pool's sleep subsystem (parker slots are pool-local:
    /// worker `i` parks as slot `i - start`).
    sleep: Sleep,
    /// Global index of the most recent cross-pool thief that took work
    /// from this pool (`usize::MAX` = none). Pool members try it first
    /// when they go remote — it plausibly still holds this pool's work
    /// (Suksompong et al.'s steal-back).
    last_thief: AtomicUsize,
}

/// Monotonic client ids for pool affinity, Weyl-spread so consecutive
/// client threads land on different pools — the injector's shard cursor
/// lifted one level up the topology.
static NEXT_AFFINITY: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static AFFINITY_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's sticky affinity token: assigned once, on the thread's
/// first external submission, and reused for every pool thereafter —
/// one client's submissions always land in one pool of any given pool's
/// topology.
fn client_affinity() -> usize {
    AFFINITY_ID.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            return v;
        }
        let id = NEXT_AFFINITY
            .fetch_add(1, Ordering::Relaxed)
            .wrapping_mul(0x9E37_79B9);
        c.set(id);
        id
    })
}

/// Everything backend-independent that workers and the pool handle
/// share: the pool shards (injector + sleep + steal-back hint each),
/// the topology tables, the shutdown flag, the per-worker stats, and
/// (with tracing on) the telemetry registry. The non-generic
/// [`ThreadPool`] holds exactly this; the backend-generic [`Shared`]
/// wraps it together with the stealer handles.
pub(crate) struct SharedCore {
    num_procs: usize,
    /// The `K ≥ 1` pools. `shards.len() == 1` is the classic flat pool.
    shards: Vec<PoolShard>,
    /// Pool index of each worker (precomputed: the blocks are uneven
    /// when `K ∤ P`, so this is a table, not arithmetic).
    pool_of: Vec<u32>,
    /// Fixed threshold the cross-pool coin compares one `next_u64`
    /// draw against ([`abp_core::coin_threshold`] of
    /// [`PoolConfig::cross_steal`]).
    cross_coin: u64,
    /// Baseline mode: global victim scans despite `K > 1`.
    flat_scan: bool,
    shutdown: AtomicBool,
    /// The pool's split cadence, read by [`crate::par`]'s splitter.
    split: SplitKind,
    /// The pool's steal-batching policy. `Single` keeps every steal and
    /// injector poll a one-task transfer (the PR-9 hot paths, verbatim);
    /// `Half { cap }` lets cross-pool steals and injector polls claim up
    /// to `cap` tasks per round trip.
    batch: BatchKind,
    pub(crate) stats: Vec<WorkerStats>,
    /// The selected backend (capability constants drive the per-backend
    /// shutdown assertions; the name labels reports).
    backend: Backend,
    #[cfg(feature = "telemetry")]
    registry: Option<Arc<Registry>>,
}

impl SharedCore {
    /// The pool this client thread's submissions route to: sticky
    /// per-thread affinity modulo the pool count.
    fn client_pool(&self) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            client_affinity() % self.shards.len()
        }
    }

    /// Jobs submitted from outside and not yet picked up, over every
    /// pool's front door.
    fn injector_pending(&self) -> usize {
        self.shards.iter().map(|s| s.injector.pending()).sum()
    }

    /// Merged sleep counters over every pool's sleep subsystem.
    fn sleep_stats(&self) -> SleepStats {
        let mut out = SleepStats::default();
        for s in &self.shards {
            let st = s.sleep.stats();
            out.wakes_sent += st.wakes_sent;
            out.wakes_skipped += st.wakes_skipped;
            out.wakes_spurious += st.wakes_spurious;
            out.hits_after_unpark += st.hits_after_unpark;
            out.timed_out_parks += st.timed_out_parks;
        }
        out
    }
    /// Timestamp for an external submission (0 when tracing is off: the
    /// latency histogram is then skipped on the worker side). With
    /// tracing on, the stamp is clamped to at least 1ns so a submission
    /// landing exactly on the registry epoch can never be mistaken for
    /// the tracing-off sentinel (and silently dropped from the
    /// histogram).
    fn submit_ns(&self) -> u64 {
        #[cfg(feature = "telemetry")]
        {
            self.registry
                .as_ref()
                .map(|r| r.now_ns().max(1))
                .unwrap_or(0)
        }
        #[cfg(not(feature = "telemetry"))]
        {
            0
        }
    }

    /// Submits one external job through the client's affinity pool's
    /// sharded injector, then wakes at most one parked worker *of that
    /// pool*. Publish-then-notify order is what the sleep protocol
    /// requires (INV-EC-PUB): the notify's epoch bump is the barrier
    /// that makes this push visible to any pool member racing into a
    /// park, so — unlike the old condvar protocol — no wakeup can be
    /// missed and no park timeout is needed to cap a race.
    fn inject(&self, job: JobRef) {
        let shard = &self.shards[self.client_pool()];
        shard.injector.push(job.to_word(), self.submit_ns());
        self.notify_shard(shard, 1);
    }

    /// Submits a batch under one shard lock of the client's affinity
    /// pool, then wakes `min(batch_len, sleepers)` of that pool's
    /// workers — one per job, never the herd.
    fn inject_batch(&self, words: &[usize]) {
        let shard = &self.shards[self.client_pool()];
        shard.injector.push_batch(words, self.submit_ns());
        self.notify_shard(shard, words.len());
    }

    /// Producer-side wake for `n` just-published external jobs in
    /// `shard`'s injector. External submitters have no worker timeline,
    /// so wake events are not traced here (the counters still move).
    fn notify_shard(&self, shard: &PoolShard, n: usize) {
        match shard.sleep.kind() {
            SleepKind::Eventcount => shard.sleep.notify_jobs(n, |_| {}),
            SleepKind::CondvarFallback => shard.sleep.fallback_notify_all(),
        }
    }

    /// Stamps the (pool-merged) sleep scalar counters into a telemetry
    /// snapshot (the unpark-to-work histogram is already there; scalars
    /// live with the pool, like the injector's).
    #[cfg(feature = "telemetry")]
    fn stamp_sleep(&self, snap: &mut TelemetrySnapshot) {
        let s = self.sleep_stats();
        snap.sleep.wakes_sent = s.wakes_sent;
        snap.sleep.wakes_skipped = s.wakes_skipped;
        snap.sleep.wakes_spurious = s.wakes_spurious;
        snap.sleep.hits_after_unpark = s.hits_after_unpark;
        snap.sleep.timed_out_parks = s.timed_out_parks;
    }

    /// Stamps the injector counters, summed over every pool's front
    /// door, into a telemetry snapshot.
    #[cfg(feature = "telemetry")]
    fn stamp_injectors(&self, snap: &mut TelemetrySnapshot) {
        // Accumulate only the counter fields: the snapshot's injector
        // section also carries the registry's inject-to-start latency
        // histogram, which must survive the stamp.
        let out = &mut snap.injector;
        out.shards = 0;
        out.submissions = 0;
        out.contention = 0;
        out.polls = 0;
        out.hits = 0;
        out.empty_fast = 0;
        for s in &self.shards {
            let mut one = abp_telemetry::InjectorSnapshot::default();
            s.injector.stamp(&mut one);
            out.shards += one.shards;
            out.submissions += one.submissions;
            out.contention += one.contention;
            out.polls += one.polls;
            out.hits += one.hits;
            out.empty_fast += one.empty_fast;
        }
    }

    /// Stamps the steal-batching counters into a telemetry snapshot as
    /// named counters. Only when a batch actually happened: `Single`
    /// runs (and batched runs that never multi-claimed) leave both
    /// exporters byte-identical.
    #[cfg(feature = "telemetry")]
    fn stamp_batch(&self, snap: &mut TelemetrySnapshot) {
        let s = PoolStats::aggregate(&self.stats);
        if s.batch_steals == 0 {
            return;
        }
        snap.counters
            .push(("batch_steals".to_string(), s.batch_steals));
        snap.counters
            .push(("batched_tasks".to_string(), s.batched_tasks));
    }

    /// Stamps the topology counters — pool count, remote/local steal
    /// split — into a telemetry snapshot as named counters, so both
    /// JSON exporters carry the new accounting axis. Only on a `K > 1`
    /// topology: flat snapshots stay byte-identical.
    #[cfg(feature = "telemetry")]
    fn stamp_topology(&self, snap: &mut TelemetrySnapshot) {
        if self.shards.len() == 1 {
            return;
        }
        let s = PoolStats::aggregate(&self.stats);
        snap.counters
            .push(("pools".to_string(), self.shards.len() as u64));
        snap.counters
            .push(("remote_steals".to_string(), s.remote_steals));
        snap.counters
            .push(("local_steals".to_string(), s.local_steals()));
        snap.counters
            .push(("remote_attempts".to_string(), s.remote_attempts));
    }

    /// Stamps the data-parallel splitter counters into a telemetry
    /// snapshot as named counters, so both JSON exporters (the metrics
    /// dump and the Chrome trace) carry them.
    #[cfg(feature = "telemetry")]
    fn stamp_par(&self, snap: &mut TelemetrySnapshot) {
        let s = PoolStats::aggregate(&self.stats);
        snap.counters.push(("par_splits".to_string(), s.par_splits));
        snap.counters
            .push(("par_seq_fallbacks".to_string(), s.par_seq));
    }
}

/// The backend-generic shared state: the core plus one stealer handle
/// per worker. Workers hold an `Arc` of this; the pool handle only
/// holds the core (it never steals).
pub(crate) struct Shared<B: TaskDeque<usize>> {
    core: Arc<SharedCore>,
    stealers: Vec<B::Stealer>,
}

/// The object-safe facade over a worker context, for code that runs on
/// a worker but cannot name the pool's backend type (`join`, `scope`,
/// and the data-parallel layer reach the current worker through
/// `current_worker() -> Option<&dyn AnyWorker>`). One virtual call per
/// scheduler operation; the deque protocol underneath is already
/// monomorphized.
pub(crate) trait AnyWorker {
    fn index(&self) -> usize;
    fn num_procs(&self) -> usize;
    fn split_kind(&self) -> SplitKind;
    fn sleepers_hint(&self) -> usize;
    fn note_par_split(&self);
    fn note_par_seq(&self);
    /// `pushBottom`; false means the deque is full (run the job inline).
    fn push(&self, job: JobRef) -> bool;
    /// `popBottom`.
    fn pop(&self) -> Option<JobRef>;
    fn execute_job(&self, job: JobRef);
    fn find_distant_work(&self) -> Option<JobRef>;
    /// Object-safe spelling of [`WorkerCtx::wait_until`]; call through
    /// the inherent `wait_until` on `dyn AnyWorker` instead.
    fn wait_until_probe(&self, probe: &dyn Fn() -> bool);
    /// Identity of the owning pool, for [`ThreadPool::install`]'s
    /// same-pool fast path.
    fn core_ptr(&self) -> *const SharedCore;
}

impl dyn AnyWorker + '_ {
    /// Executes other work (or yields) while waiting for `probe` to
    /// become true. Closure-generic convenience over
    /// [`AnyWorker::wait_until_probe`].
    pub(crate) fn wait_until(&self, probe: impl Fn() -> bool) {
        self.wait_until_probe(&probe)
    }
}

/// Worker-thread-local context, monomorphized over the pool's deque
/// backend. A type-erased pointer to it lives in TLS (as an
/// [`AnyWorker`] trait object) while the worker runs.
pub struct WorkerCtx<B: TaskDeque<usize> = AbpBackend> {
    index: usize,
    /// This worker's pool and its global index range, cached off
    /// [`SharedCore`]'s topology tables (hot-path reads).
    pool: usize,
    pool_start: usize,
    pool_end: usize,
    deque: B::Owner,
    shared: Arc<Shared<B>>,
    engine: RefCell<PolicyEngine>,
    /// True between returning from a wake-caused unpark and finding the
    /// first piece of work. Finding work converts it into a
    /// `hits_after_unpark`; committing back to sleep with it still set
    /// converts it into a `wakes_spurious`.
    woken_pending: Cell<bool>,
    /// Timestamp of the wake-caused unpark (0 when tracing is off),
    /// for the unpark-to-work latency histogram.
    woken_at: Cell<u64>,
    /// Reused scratch for batched cross-pool robs: after the first few
    /// trips the capacity sticks at the batch cap and the steady state
    /// allocates nothing.
    batch_buf: RefCell<StolenBatch<usize>>,
    #[cfg(feature = "telemetry")]
    tele: Option<WorkerTelemetry>,
}

thread_local! {
    static CURRENT: Cell<Option<*const (dyn AnyWorker + 'static)>> = const { Cell::new(None) };
}

/// The current worker context, if this thread is a pool worker.
pub(crate) fn current_worker<'a>() -> Option<&'a dyn AnyWorker> {
    // SAFETY: the pointer is set for exactly the lifetime of
    // worker_main's stack frame on this thread.
    CURRENT.with(|c| c.get()).map(|p| unsafe { &*p })
}

impl<B: TaskDeque<usize>> WorkerCtx<B> {
    /// Worker index within the pool.
    pub fn index(&self) -> usize {
        self.index
    }

    fn core(&self) -> &SharedCore {
        &self.shared.core
    }

    fn stats(&self) -> &WorkerStats {
        &self.core().stats[self.index]
    }

    /// This worker's pool shard (its injector, sleep subsystem, and
    /// steal-back hint).
    fn shard(&self) -> &PoolShard {
        &self.core().shards[self.pool]
    }

    /// This worker's parker slot within its pool's sleep subsystem.
    fn local_index(&self) -> usize {
        self.index - self.pool_start
    }

    /// The pool's worker count `P`.
    pub(crate) fn num_procs(&self) -> usize {
        self.shared.stealers.len()
    }

    /// The pool's split cadence (the fifth policy axis).
    pub(crate) fn split_kind(&self) -> SplitKind {
        self.core().split
    }

    /// Relaxed-load idle gauge for the adaptive splitter — this pool's
    /// sleepers (splits feed local thieves first under federation). See
    /// [`crate::sleep`]'s `sleepers_hint` for the race-tolerance
    /// argument.
    pub(crate) fn sleepers_hint(&self) -> usize {
        self.shard().sleep.sleepers_hint()
    }

    /// Counts one adaptive-splitter fork.
    pub(crate) fn note_par_split(&self) {
        self.stats().par_splits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one splittable range the splitter ran sequentially.
    pub(crate) fn note_par_seq(&self) {
        self.stats().par_seq.fetch_add(1, Ordering::Relaxed);
    }

    #[cfg(feature = "telemetry")]
    #[inline]
    fn tele_record(&self, kind: EventKind) {
        if let Some(t) = &self.tele {
            t.record(kind);
        }
    }

    /// `pushBottom`. Returns false if the (fixed-capacity) deque is full —
    /// the caller then runs the job inline instead.
    ///
    /// The spawn event is coarse-stamped (last clock read, usually the
    /// enclosing job's `ExecStart`) so the `join` fast path — push, run
    /// `a`, pop — never touches the clock.
    pub(crate) fn push(&self, job: JobRef) -> bool {
        #[cfg(feature = "telemetry")]
        if let Some(t) = &self.tele {
            t.record_coarse(EventKind::Spawn);
        }
        let pushed = self.deque.push_bottom(job.to_word()).is_ok();
        if pushed {
            self.notify_push();
        }
        pushed
    }

    /// Producer-side wake after a successful `pushBottom`: with the
    /// eventcount, a relaxed peek at the sleep word (free while the pool
    /// is busy) and a targeted wake only when idlers are visible. A
    /// stale peek can miss a worker racing into a park, but this owner
    /// drains its own deque before idling, so the job still runs — the
    /// miss costs one scan of parallelism, never liveness (the external
    /// inject path, which has no such owner, always pays the barrier).
    /// The legacy condvar protocol never woke anyone here; the fallback
    /// keeps that behaviour.
    fn notify_push(&self) {
        let sleep = &self.shard().sleep;
        match sleep.kind() {
            SleepKind::Eventcount => {
                #[cfg(feature = "telemetry")]
                sleep.notify_spawn(|ev| {
                    self.tele_record(match ev {
                        Some(target) => EventKind::WakeOne {
                            target: (self.pool_start + target) as u32,
                        },
                        None => EventKind::WakeSkipped,
                    });
                });
                #[cfg(not(feature = "telemetry"))]
                sleep.notify_spawn(|_| {});
            }
            SleepKind::CondvarFallback => {}
        }
    }

    /// Bookkeeping for work found anywhere (own pop, steal, injector):
    /// resets the policy engine's failure streak and, if this worker was
    /// recently woken, credits the wake and records its latency.
    pub(crate) fn note_found_work(&self) {
        self.engine.borrow_mut().note_work_found();
        if self.woken_pending.replace(false) {
            self.shard().sleep.note_hit_after_unpark();
            #[cfg(feature = "telemetry")]
            if let Some(t) = &self.tele {
                let woken_at = self.woken_at.get();
                if woken_at > 0 {
                    t.unpark_to_work_ns(t.now_ns().saturating_sub(woken_at));
                }
            }
        }
    }

    /// `popBottom`.
    pub(crate) fn pop(&self) -> Option<JobRef> {
        self.deque.pop_bottom().map(JobRef::from_word)
    }

    /// Executes `job` and maintains the job counter, the job-run-time
    /// histogram, and the `ExecStart`/`ExecEnd` trace span. Every job the
    /// scheduler runs goes through here so counts and traces agree.
    pub(crate) fn execute_job(&self, job: JobRef) {
        #[cfg(feature = "telemetry")]
        let started = self.tele.as_ref().map(|t| {
            let now = t.now_ns();
            t.record_at(now, EventKind::ExecStart);
            now
        });
        unsafe { job.execute() };
        self.stats().jobs.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "telemetry")]
        if let (Some(t), Some(t0)) = (self.tele.as_ref(), started) {
            let now = t.now_ns();
            t.job_run_ns(now.saturating_sub(t0));
            t.record_at(now, EventKind::ExecEnd);
        }
    }

    /// The paper's `yield` between steal scans (§4.4).
    fn do_yield(&self) {
        self.stats().yields.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "telemetry")]
        self.tele_record(EventKind::Yield);
        std::thread::yield_now();
    }

    /// Records one completed steal attempt everywhere it is counted —
    /// stats outcome counter (including the locality split), telemetry
    /// event, steal-latency sample, the steal-back hint, and the policy
    /// engine's victim feedback. One function so the outcome branches
    /// cannot drift apart again. `observe_as` is the coordinate the
    /// policy engine saw the victim under — pool-local in hierarchical
    /// scans, global in flat scans, `None` for topology-driven cross
    /// attempts that bypass the selector.
    fn note_steal(
        &self,
        victim: usize,
        result: StealResult,
        scan_start_ns: Option<u64>,
        observe_as: Option<usize>,
    ) {
        let stats = self.stats();
        match result {
            StealResult::Hit => stats.steals.fetch_add(1, Ordering::Relaxed),
            StealResult::Abort => stats.aborts.fetch_add(1, Ordering::Relaxed),
            StealResult::Empty => stats.empties.fetch_add(1, Ordering::Relaxed),
            StealResult::Duplicate => stats.duplicates.fetch_add(1, Ordering::Relaxed),
        };
        let core = self.core();
        if core.pool_of[victim] as usize != self.pool {
            stats.remote_attempts.fetch_add(1, Ordering::Relaxed);
            if result == StealResult::Hit {
                stats.remote_steals.fetch_add(1, Ordering::Relaxed);
                // We took the victim's pool's work: leave our card so
                // its members can steal it back.
                core.shards[core.pool_of[victim] as usize]
                    .last_thief
                    .store(self.index, Ordering::Relaxed);
            } else {
                // A missed remote attempt on our own steal-back hint
                // retires the hint — it no longer holds our work.
                let hint = &self.shard().last_thief;
                if hint.load(Ordering::Relaxed) == victim {
                    hint.store(usize::MAX, Ordering::Relaxed);
                }
            }
        }
        #[cfg(feature = "telemetry")]
        if let Some(t) = self.tele.as_ref() {
            let now = t.now_ns();
            if result == StealResult::Hit {
                // Steal latency: scan start → successful grab.
                t.steal_latency_ns(now.saturating_sub(scan_start_ns.unwrap_or(now)));
            }
            t.record_at(
                now,
                EventKind::StealAttempt {
                    victim: victim as u32,
                    outcome: match result {
                        StealResult::Hit => StealOutcome::Hit,
                        StealResult::Abort => StealOutcome::Abort,
                        StealResult::Empty => StealOutcome::Empty,
                        StealResult::Duplicate => StealOutcome::Duplicate,
                    },
                },
            );
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = scan_start_ns;
        if let Some(seen) = observe_as {
            self.engine.borrow_mut().observe(seen, result);
        }
    }

    /// One counted, non-blocking poll of the external-submission
    /// injector. A grab counts as an `inject`; a miss (empty or
    /// contended) counts as an `empty` — either way exactly one outcome
    /// per attempt, so the accounting identity extends to the new path.
    pub(crate) fn poll_injector(&self) -> Option<JobRef> {
        let cap = self.core().batch.cap();
        if cap > 1 {
            return self.poll_injector_batch(cap);
        }
        let stats = self.stats();
        stats.steal_attempts.fetch_add(1, Ordering::Relaxed);
        match self.shard().injector.poll(self.local_index()) {
            Some((word, submit_ns)) => {
                stats.injects.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "telemetry")]
                if let Some(t) = &self.tele {
                    let now = t.now_ns();
                    if submit_ns > 0 {
                        t.inject_latency_ns(now.saturating_sub(submit_ns));
                    }
                    t.record_at(now, EventKind::InjectorPoll { hit: true });
                }
                #[cfg(not(feature = "telemetry"))]
                let _ = submit_ns;
                Some(JobRef::from_word(word))
            }
            None => {
                stats.empties.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "telemetry")]
                self.tele_record(EventKind::InjectorPoll { hit: false });
                None
            }
        }
    }

    /// Batched spelling of [`WorkerCtx::poll_injector`], taken when the
    /// batch policy is [`BatchKind::Half`]: up to `cap` jobs leave this
    /// pool's front door under one shard lock ([`Injector::poll_batch`]
    /// counts it as one poll with `n` hits). The first job is returned
    /// to run now; the rest land on our own deque bottom — visible to
    /// pool-mates — and wake `min(rest, sleepers)` of them. Worker-side
    /// accounting stays per-job (`n` attempts, `n` injects, one
    /// inject-to-pickup latency sample per stamped job), so the five-way
    /// identity and the SV1 histograms see exactly the jobs that moved.
    /// Injector batches do *not* feed the `batch_steals` counters —
    /// those measure steal round trips, and `batch_consistent()` bounds
    /// them by `steals`.
    fn poll_injector_batch(&self, cap: usize) -> Option<JobRef> {
        let stats = self.stats();
        let got = self.shard().injector.poll_batch(self.local_index(), cap);
        if got.is_empty() {
            stats.steal_attempts.fetch_add(1, Ordering::Relaxed);
            stats.empties.fetch_add(1, Ordering::Relaxed);
            #[cfg(feature = "telemetry")]
            self.tele_record(EventKind::InjectorPoll { hit: false });
            return None;
        }
        let n = got.len();
        stats.steal_attempts.fetch_add(n as u64, Ordering::Relaxed);
        stats.injects.fetch_add(n as u64, Ordering::Relaxed);
        #[cfg(feature = "telemetry")]
        if let Some(t) = &self.tele {
            let now = t.now_ns();
            for &(_, submit_ns) in &got {
                if submit_ns > 0 {
                    t.inject_latency_ns(now.saturating_sub(submit_ns));
                }
                t.record_at(now, EventKind::InjectorPoll { hit: true });
            }
        }
        let mut jobs = got.into_iter();
        let (first, _) = jobs.next().expect("non-empty injector batch");
        let mut parked_here = 0usize;
        for (word, submit_ns) in jobs {
            match self.deque.push_bottom(word) {
                Ok(()) => parked_here += 1,
                // A full fixed-capacity deque (practically impossible at
                // the default 1 << 15 slots) sends the job back through
                // our own front door, original stamp preserved — a task
                // is never dropped.
                Err(PushError(w)) => {
                    self.shard().injector.push(w, submit_ns);
                    parked_here += 1;
                }
            }
        }
        if parked_here > 0 {
            self.core().notify_shard(self.shard(), parked_here);
        }
        Some(JobRef::from_word(first))
    }

    /// One counted `popTop` against global worker `v`. A
    /// [`Steal::Duplicate`] from a multiplicity-relaxed backend is a
    /// counted miss: the task was already extracted by someone else, so
    /// the thief simply moves on.
    fn try_rob(
        &self,
        v: usize,
        scan_start: Option<u64>,
        observe_as: Option<usize>,
    ) -> Option<JobRef> {
        self.stats().steal_attempts.fetch_add(1, Ordering::Relaxed);
        let result = match self.shared.stealers[v].steal() {
            Steal::Taken(w) => {
                self.note_steal(v, StealResult::Hit, scan_start, observe_as);
                return Some(JobRef::from_word(w));
            }
            Steal::Abort => StealResult::Abort,
            Steal::Empty => StealResult::Empty,
            Steal::Duplicate => StealResult::Duplicate,
        };
        self.note_steal(v, result, scan_start, observe_as);
        None
    }

    /// One *batched* cross-pool round trip against global worker `v`,
    /// taken when the batch policy is [`BatchKind::Half`]: claim up to
    /// `cap` tasks (biased to half the victim's visible backlog by the
    /// backend's `steal_batch_into`, refilling a per-worker scratch
    /// buffer), keep the first to run now, push the
    /// rest onto our own deque bottom, and wake `min(rest, sleepers)`
    /// pool-mates so one migration fans work out locally instead of
    /// costing one remote round trip per task.
    ///
    /// Accounting stays per-task — each claimed task is one attempt and
    /// one [`StealResult::Hit`] through [`WorkerCtx::note_steal`], so
    /// the five-way identity, the remote/local locality split, and the
    /// steal-back hint are all maintained exactly as if the tasks had
    /// been stolen one by one. Only the round-trip shape is new:
    /// `batch_steals`/`batched_tasks` record it, outside the identity,
    /// whenever a trip moved `n ≥ 2` tasks.
    fn try_rob_batch(&self, v: usize, scan_start: Option<u64>, cap: usize) -> Option<JobRef> {
        let stats = self.stats();
        let mut batch = self.batch_buf.borrow_mut();
        self.shared.stealers[v].steal_batch_into(cap, &mut batch);
        // Lost once-guard races inside the scanned range (multiplicity
        // backends only): counted misses, one attempt each, exactly as
        // single steals count a `Steal::Duplicate`.
        for _ in 0..batch.duplicates {
            stats.steal_attempts.fetch_add(1, Ordering::Relaxed);
            self.note_steal(v, StealResult::Duplicate, scan_start, None);
        }
        if batch.tasks.is_empty() {
            // Nothing claimed: when the whole range was lost to
            // duplicates those misses above were the outcome; otherwise
            // the trip is one counted Abort or Empty, as for `try_rob`.
            if batch.duplicates == 0 {
                stats.steal_attempts.fetch_add(1, Ordering::Relaxed);
                let result = if batch.aborted {
                    StealResult::Abort
                } else {
                    StealResult::Empty
                };
                self.note_steal(v, result, scan_start, None);
            }
            return None;
        }
        let n = batch.tasks.len();
        stats.steal_attempts.fetch_add(n as u64, Ordering::Relaxed);
        for _ in 0..n {
            self.note_steal(v, StealResult::Hit, scan_start, None);
        }
        if n >= 2 {
            stats.batch_steals.fetch_add(1, Ordering::Relaxed);
            stats.batched_tasks.fetch_add(n as u64, Ordering::Relaxed);
        }
        let mut tasks = batch.tasks.drain(..);
        let first = tasks.next().expect("non-empty batch");
        let mut parked_here = 0usize;
        for word in tasks {
            match self.deque.push_bottom(word) {
                Ok(()) => parked_here += 1,
                // A full fixed-capacity deque (practically impossible at
                // the default 1 << 15 slots) reroutes the task through
                // our own front door — unstamped, like internal work —
                // rather than dropping it.
                Err(PushError(w)) => {
                    self.shard().injector.push(w, 0);
                    parked_here += 1;
                }
            }
        }
        if parked_here > 0 {
            self.core().notify_shard(self.shard(), parked_here);
        }
        Some(JobRef::from_word(first))
    }

    /// One counted injector poll, when the inject policy says it is due
    /// and this pool's front door is non-empty.
    fn maybe_poll_injector(&self) -> Option<JobRef> {
        if self.shard().injector.pending() > 0 && self.engine.borrow_mut().injector_due() {
            return self.poll_injector();
        }
        None
    }

    /// The target of one cross-pool attempt: the steal-back hint (the
    /// remote worker that most recently took this pool's work — per the
    /// localized model it plausibly still holds it) when set, else a
    /// uniformly random worker outside this pool.
    fn remote_victim(&self) -> usize {
        let hint = self.shard().last_thief.load(Ordering::Relaxed);
        if hint != usize::MAX {
            return hint;
        }
        let n_local = self.pool_end - self.pool_start;
        let r = self
            .engine
            .borrow_mut()
            .draw_below(self.core().num_procs - n_local);
        if r < self.pool_start {
            r
        } else {
            r + n_local
        }
    }

    /// One full steal scan: backoff (per policy), then the victims in
    /// the selector's order, then — when the inject policy says the
    /// poll is due and this pool's injector is non-empty — the
    /// injector.
    ///
    /// On a flat topology (`K == 1`, or the [`PoolConfig::flat_scan`]
    /// baseline) the scan tries all `P − 1` workers, byte-identically
    /// to the pre-topology pool. On a hierarchical topology the scan is
    /// local-first: the `n − 1` pool-mates (the selector runs in
    /// pool-local coordinates), then this pool's own front door — its
    /// externally submitted work, which affinity routing keeps at home
    /// — and only then, with probability [`PoolConfig::cross_steal`],
    /// one cross-pool attempt at the [`WorkerCtx::remote_victim`].
    pub(crate) fn find_distant_work(&self) -> Option<JobRef> {
        match self.engine.borrow_mut().backoff_action() {
            BackoffAction::Proceed => {}
            BackoffAction::Yield => self.do_yield(),
            BackoffAction::Spin(n) => {
                for _ in 0..n {
                    std::hint::spin_loop();
                }
            }
            BackoffAction::SpinThenYield(n) => {
                for _ in 0..n {
                    std::hint::spin_loop();
                }
                self.do_yield();
            }
        }
        #[cfg(feature = "telemetry")]
        let scan_start = self.tele.as_ref().map(|t| t.now_ns());
        #[cfg(not(feature = "telemetry"))]
        let scan_start = None;
        let core = self.core();
        if core.shards.len() == 1 || core.flat_scan {
            let n = self.shared.stealers.len();
            if n > 1 {
                self.engine.borrow_mut().begin_scan(self.index, n);
                for _ in 0..n - 1 {
                    let v = self.engine.borrow_mut().next_victim(self.index, n);
                    if let Some(job) = self.try_rob(v, scan_start, Some(v)) {
                        return Some(job);
                    }
                }
            }
            return self.maybe_poll_injector();
        }
        let n_local = self.pool_end - self.pool_start;
        if n_local > 1 {
            let me = self.local_index();
            self.engine.borrow_mut().begin_scan(me, n_local);
            for _ in 0..n_local - 1 {
                let v_local = self.engine.borrow_mut().next_victim(me, n_local);
                if let Some(job) =
                    self.try_rob(self.pool_start + v_local, scan_start, Some(v_local))
                {
                    return Some(job);
                }
            }
        }
        if let Some(job) = self.maybe_poll_injector() {
            return Some(job);
        }
        if self.engine.borrow_mut().coin(core.cross_coin) {
            let v = self.remote_victim();
            // `Single` takes the PR-9 single-steal path verbatim; the
            // batched trip draws no extra randomness, so the policy rng
            // streams stay aligned either way.
            let cap = core.batch.cap();
            let job = if cap > 1 {
                self.try_rob_batch(v, scan_start, cap)
            } else {
                self.try_rob(v, scan_start, None)
            };
            if let Some(job) = job {
                return Some(job);
            }
        }
        None
    }

    /// True if any source this worker could take work from looks
    /// non-empty: the shutdown flag (which also demands wakefulness),
    /// this pool's injector, or the deques this worker's scan covers —
    /// all other workers on a flat scan, the pool-mates on a
    /// hierarchical one (a hierarchical thief is woken only by its own
    /// pool, so it only stays up for its own pool; remote work is its
    /// owners' responsibility). Our own deque is known empty — the
    /// caller just failed a `popBottom`.
    fn work_in_sight(&self) -> bool {
        let core = self.core();
        if core.shutdown.load(Ordering::Acquire) || self.shard().injector.pending() > 0 {
            return true;
        }
        let (lo, hi) = if core.shards.len() == 1 || core.flat_scan {
            (0, core.num_procs)
        } else {
            (self.pool_start, self.pool_end)
        };
        self.shared.stealers[lo..hi]
            .iter()
            .enumerate()
            .any(|(j, s)| lo + j != self.index && s.len_hint() > 0)
    }

    /// Parks this worker until a producer's wake (`timeout == None`, the
    /// [`IdleAction::ParkUntilWake`] policy) or for a bounded nap
    /// (`Some`, the legacy [`IdleAction::Park`] policy). May return
    /// without parking at all when the sleep protocol detects work.
    ///
    /// Eventcount path — the three-step protocol from [`crate::sleep`]:
    /// announce, re-scan every work source, then commit via the
    /// epoch-checked CAS; a producer that publishes anywhere in between
    /// either fails the commit or (once committed) is obliged to wake us.
    /// Park/unpark counters and trace spans move only for *committed*
    /// parks, so `parks == unparks` holds exactly at shutdown.
    fn park(&self, timeout: Option<Duration>) {
        let core = self.core();
        let shard = self.shard();
        let sleep = &shard.sleep;
        match sleep.kind() {
            SleepKind::Eventcount => {
                let token = sleep.announce();
                if self.work_in_sight() {
                    sleep.cancel_announce();
                    return;
                }
                if !sleep.try_commit(self.local_index(), token) {
                    // A producer moved the epoch after our re-scan began;
                    // its work is visible now — resume hunting.
                    return;
                }
                if self.woken_pending.replace(false) {
                    // Woken last time but found nothing before sleeping
                    // again: that wake bought no work.
                    sleep.note_spurious_wake();
                }
                self.stats().parks.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "telemetry")]
                self.tele_record(EventKind::Park);
                let outcome = sleep.park_committed(self.local_index(), timeout);
                self.note_unpark(outcome);
            }
            SleepKind::CondvarFallback => {
                if self.woken_pending.replace(false) {
                    sleep.note_spurious_wake();
                }
                self.stats().parks.fetch_add(1, Ordering::Relaxed);
                #[cfg(feature = "telemetry")]
                self.tele_record(EventKind::Park);
                // The legacy protocol: pool-wide lock, re-check under it,
                // bounded nap (even for the untimed policy — without the
                // eventcount a wakeup genuinely can be missed, and the
                // timeout is what caps that race).
                let outcome = sleep.fallback_park(timeout, || {
                    shard.injector.pending() > 0 || core.shutdown.load(Ordering::Acquire)
                });
                self.note_unpark(outcome);
            }
        }
    }

    fn note_unpark(&self, outcome: SleepOutcome) {
        self.stats().unparks.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "telemetry")]
        self.tele_record(EventKind::Unpark);
        if outcome == SleepOutcome::Woken {
            self.woken_pending.set(true);
            #[cfg(feature = "telemetry")]
            self.woken_at
                .set(self.tele.as_ref().map_or(0, |t| t.now_ns()));
        }
    }

    /// Executes other work (or yields) while waiting for `probe` to become
    /// true; used by `join` when its second operand was stolen, and by
    /// scopes. Never parks: a waiting worker keeps contributing.
    pub(crate) fn wait_until(&self, probe: impl Fn() -> bool) {
        while !probe() {
            if let Some(job) = self.pop().or_else(|| self.find_distant_work()) {
                self.execute_job(job);
            }
        }
    }
}

impl<B: TaskDeque<usize>> AnyWorker for WorkerCtx<B> {
    fn index(&self) -> usize {
        WorkerCtx::index(self)
    }
    fn num_procs(&self) -> usize {
        WorkerCtx::num_procs(self)
    }
    fn split_kind(&self) -> SplitKind {
        WorkerCtx::split_kind(self)
    }
    fn sleepers_hint(&self) -> usize {
        WorkerCtx::sleepers_hint(self)
    }
    fn note_par_split(&self) {
        WorkerCtx::note_par_split(self)
    }
    fn note_par_seq(&self) {
        WorkerCtx::note_par_seq(self)
    }
    fn push(&self, job: JobRef) -> bool {
        WorkerCtx::push(self, job)
    }
    fn pop(&self) -> Option<JobRef> {
        WorkerCtx::pop(self)
    }
    fn execute_job(&self, job: JobRef) {
        WorkerCtx::execute_job(self, job)
    }
    fn find_distant_work(&self) -> Option<JobRef> {
        WorkerCtx::find_distant_work(self)
    }
    fn wait_until_probe(&self, probe: &dyn Fn() -> bool) {
        WorkerCtx::wait_until(self, probe)
    }
    fn core_ptr(&self) -> *const SharedCore {
        Arc::as_ptr(&self.shared.core)
    }
}

/// The scheduling loop (Figure 3), monomorphized over the deque
/// backend. The TLS registration erases the backend type so `join`,
/// `scope`, and the data-parallel layer can reach this context through
/// [`AnyWorker`].
fn worker_main<B: TaskDeque<usize>>(ctx: WorkerCtx<B>) {
    CURRENT.with(|c| {
        c.set(Some(
            &ctx as &dyn AnyWorker as *const (dyn AnyWorker + 'static),
        ))
    });
    let core = Arc::clone(&ctx.shared.core);
    loop {
        let job = ctx.pop().or_else(|| ctx.find_distant_work());
        match job {
            Some(job) => {
                ctx.note_found_work();
                ctx.execute_job(job);
            }
            None => {
                if core.shutdown.load(Ordering::Acquire) {
                    // Drain this pool's front door before exiting so
                    // every accepted external submission still runs
                    // exactly once. Blocking pops: during shutdown a
                    // `None` must really mean empty. (A shard whose
                    // workers all exited already is drained by
                    // `ThreadPool::shutdown` itself.)
                    if let Some((word, _)) = ctx.shard().injector.pop_blocking(ctx.local_index()) {
                        ctx.note_found_work();
                        ctx.execute_job(JobRef::from_word(word));
                        continue;
                    }
                    break;
                }
                let action = {
                    let mut engine = ctx.engine.borrow_mut();
                    engine.note_failed();
                    engine.idle_action()
                };
                let parked = match action {
                    IdleAction::Steal => false,
                    IdleAction::Park(us) => {
                        ctx.park(Some(Duration::from_micros(us as u64)));
                        true
                    }
                    IdleAction::ParkUntilWake => {
                        ctx.park(None);
                        true
                    }
                };
                if parked {
                    // A wake-up usually means an external submission;
                    // poll unconditionally (counted) so even an
                    // `InjectKind::Never` ablation drains the front
                    // door after parking.
                    if let Some(job) = ctx.poll_injector() {
                        ctx.note_found_work();
                        ctx.execute_job(job);
                    }
                }
            }
        }
    }
    CURRENT.with(|c| c.set(None));
}

/// Builds each worker's deque from the backend descriptor and spawns
/// the monomorphized worker threads. One instantiation per backend;
/// everything after this call is backend-erased.
fn spawn_workers<B: TaskDeque<usize>>(
    backend: &B,
    config: &PoolConfig,
    core: Arc<SharedCore>,
) -> Vec<std::thread::JoinHandle<()>> {
    let p = config.num_procs;
    let mut owners = Vec::with_capacity(p);
    let mut stealers = Vec::with_capacity(p);
    for _ in 0..p {
        let (w, s) = backend.new_pair();
        owners.push(w);
        stealers.push(s);
    }
    let shared = Arc::new(Shared::<B> { core, stealers });
    let mut seed_rng = DetRng::new(config.seed);
    owners
        .into_iter()
        .enumerate()
        .map(|(index, deque)| {
            let pool = shared.core.pool_of[index] as usize;
            let (pool_start, pool_end) =
                (shared.core.shards[pool].start, shared.core.shards[pool].end);
            let ctx = WorkerCtx::<B> {
                index,
                pool,
                pool_start,
                pool_end,
                deque,
                shared: Arc::clone(&shared),
                engine: RefCell::new(PolicyEngine::new(
                    &config.policies,
                    PolicyRng::from_det(seed_rng.fork(index as u64)),
                )),
                woken_pending: Cell::new(false),
                woken_at: Cell::new(0),
                batch_buf: RefCell::new(StolenBatch::empty()),
                #[cfg(feature = "telemetry")]
                tele: shared.core.registry.as_ref().map(|r| r.worker(index)),
            };
            std::thread::Builder::new()
                .name(format!("hood-worker-{index}"))
                .stack_size(config.stack_size)
                .spawn(move || worker_main::<B>(ctx))
                .expect("failed to spawn worker thread")
        })
        .collect()
}

/// What [`ThreadPool::shutdown`] returns: final statistics gathered
/// *after* every worker has exited, so no counter or trace can still be
/// moving underneath the caller.
#[derive(Debug)]
pub struct PoolReport {
    /// Aggregate counters over the pool's whole life.
    pub stats: PoolStats,
    /// The same counters, per worker.
    pub per_worker: Vec<PoolStats>,
    /// The same counters, aggregated per pool of the topology
    /// (`pools` entries; one spanning everything on a flat pool).
    pub per_pool: Vec<PoolStats>,
    /// Pool count `K` of the topology the pool ran.
    pub pools: usize,
    /// The deque backend the pool ran ([`Backend::name`]).
    pub backend: &'static str,
    /// Which sleep/wake backend the pool ran.
    pub sleep_kind: SleepKind,
    /// Sleep/wake-subsystem counters over the pool's whole life.
    pub sleep: SleepStats,
    /// The final telemetry snapshot, if tracing was configured.
    #[cfg(feature = "telemetry")]
    pub telemetry: Option<TelemetrySnapshot>,
}

/// A work-stealing thread pool in the spirit of the authors' Hood library.
pub struct ThreadPool {
    core: Arc<SharedCore>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool with `num_procs` workers and default configuration.
    pub fn new(num_procs: usize) -> Self {
        Self::with_config(PoolConfig {
            num_procs,
            ..PoolConfig::default()
        })
    }

    /// A pool with explicit configuration.
    pub fn with_config(config: PoolConfig) -> Self {
        assert!(config.num_procs >= 1);
        let p = config.num_procs;
        let k = config.pools;
        assert!(
            (1..=p).contains(&k),
            "pools must satisfy 1 <= pools ({k}) <= num_procs ({p})"
        );
        #[cfg(feature = "telemetry")]
        let registry = config
            .telemetry
            .as_ref()
            .map(|tc| Registry::with_policy(p, tc, config.policies.label()));
        // Contiguous near-even blocks: pool j owns [j·P/K, (j+1)·P/K).
        let shards: Vec<PoolShard> = (0..k)
            .map(|j| {
                let start = j * p / k;
                let end = (j + 1) * p / k;
                PoolShard {
                    start,
                    end,
                    injector: Injector::new(if config.injector_shards == 0 {
                        end - start
                    } else {
                        config.injector_shards
                    }),
                    sleep: Sleep::new(end - start, config.sleep),
                    last_thief: AtomicUsize::new(usize::MAX),
                }
            })
            .collect();
        let mut pool_of = vec![0u32; p];
        for (j, s) in shards.iter().enumerate() {
            for slot in &mut pool_of[s.start..s.end] {
                *slot = j as u32;
            }
        }
        let core = Arc::new(SharedCore {
            num_procs: p,
            shards,
            pool_of,
            cross_coin: abp_core::coin_threshold(config.cross_steal),
            flat_scan: config.flat_scan,
            shutdown: AtomicBool::new(false),
            split: config.policies.split,
            batch: config.policies.batch,
            stats: (0..p).map(|_| WorkerStats::default()).collect(),
            backend: config.backend,
            #[cfg(feature = "telemetry")]
            registry,
        });
        // The single point where the backend type is reified: each arm
        // instantiates the worker loop for its descriptor.
        let handles = match config.backend {
            Backend::Abp { capacity } => {
                spawn_workers(&AbpBackend { capacity }, &config, Arc::clone(&core))
            }
            Backend::AbpGrowable { initial_capacity } => spawn_workers(
                &GrowableBackend { initial_capacity },
                &config,
                Arc::clone(&core),
            ),
            Backend::Locking => spawn_workers(&LockingBackend, &config, Arc::clone(&core)),
            Backend::FenceFree { capacity } => {
                spawn_workers(&FenceFreeBackend { capacity }, &config, Arc::clone(&core))
            }
        };
        ThreadPool { core, handles }
    }

    /// The process count `P`.
    pub fn num_procs(&self) -> usize {
        self.core.num_procs
    }

    /// The deque backend this pool runs.
    pub fn backend(&self) -> Backend {
        self.core.backend
    }

    /// Runs `f` inside the pool (so that [`crate::join()`](crate::join::join) and
    /// [`crate::scope()`](crate::scope::scope) parallelize) and returns its result. Blocks the
    /// calling thread until done. If already on a worker thread of this
    /// pool, runs `f` directly.
    ///
    /// Calling this from a worker thread of a *different* pool blocks
    /// that worker (it sleeps rather than work-steals) — mutual
    /// cross-pool installs can therefore deadlock, exactly as in other
    /// work-stealing runtimes. Prefer one pool, or acyclic pool
    /// dependencies.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some(w) = current_worker() {
            if std::ptr::eq(w.core_ptr(), Arc::as_ptr(&self.core)) {
                return f();
            }
        }
        let result: Mutex<Option<std::thread::Result<R>>> = Mutex::new(None);
        let latch = LockLatch::new();
        {
            // SAFETY: we block on `latch` before leaving this scope, so
            // every borrow the job captures outlives its execution, and
            // the injector hands the job to exactly one worker.
            let job = unsafe {
                crate::job::HeapJob::into_job_ref(|| {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    *result.lock().unwrap() = Some(r);
                    latch.set();
                })
            };
            self.core.inject(job);
            latch.wait();
        }
        match result
            .into_inner()
            .unwrap()
            .expect("install job did not produce a result")
        {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Submits `f` for execution from *any* thread — the pool's front
    /// door. Returns immediately; the job runs on whichever worker
    /// grabs it from the sharded injector. Fire-and-forget: use
    /// [`ThreadPool::install`] (or channels/latches inside `f`) when
    /// the caller needs the result. Jobs accepted before
    /// [`ThreadPool::shutdown`] returns are guaranteed to execute
    /// exactly once (workers drain the injector before exiting, and
    /// `shutdown` itself runs any straggler that slipped in after the
    /// last worker's final sweep — nothing is leaked).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        // SAFETY: the closure is 'static and the injector/worker
        // protocol executes each submitted job exactly once (each entry
        // is popped by exactly one worker, and shutdown drains leftovers).
        let job = unsafe { crate::job::HeapJob::into_job_ref(f) };
        self.core.inject(job);
    }

    /// Submits a batch of jobs under a single injector shard lock — the
    /// cheap way for one client to submit many jobs at once. Same
    /// semantics per job as [`ThreadPool::spawn`].
    pub fn spawn_batch<I, F>(&self, jobs: I)
    where
        I: IntoIterator<Item = F>,
        F: FnOnce() + Send + 'static,
    {
        let words: Vec<usize> = jobs
            .into_iter()
            // SAFETY: as in `spawn` — exactly-once execution of each ref.
            .map(|f| unsafe { crate::job::HeapJob::into_job_ref(f) }.to_word())
            .collect();
        self.core.inject_batch(&words);
    }

    /// Jobs submitted from outside and not yet picked up by a worker,
    /// over every pool's front door.
    pub fn injector_backlog(&self) -> usize {
        self.core.injector_pending()
    }

    /// Total shards across every pool's front-door injector.
    pub fn injector_shards(&self) -> usize {
        self.core
            .shards
            .iter()
            .map(|s| s.injector.shard_count())
            .sum()
    }

    /// Pool count `K` of the topology ([`PoolConfig::pools`]).
    pub fn pool_count(&self) -> usize {
        self.core.shards.len()
    }

    /// Aggregate statistics per pool of the topology.
    pub fn per_pool_stats(&self) -> Vec<PoolStats> {
        self.core
            .shards
            .iter()
            .map(|s| PoolStats::aggregate(&self.core.stats[s.start..s.end]))
            .collect()
    }

    /// Aggregate scheduler statistics since pool creation.
    pub fn stats(&self) -> PoolStats {
        PoolStats::aggregate(&self.core.stats)
    }

    /// Per-worker scheduler statistics since pool creation.
    pub fn per_worker_stats(&self) -> Vec<PoolStats> {
        self.core.stats.iter().map(|w| w.snapshot()).collect()
    }

    /// Which sleep/wake backend this pool runs.
    pub fn sleep_kind(&self) -> SleepKind {
        self.core.shards[0].sleep.kind()
    }

    /// Workers currently asleep across every pool (a live gauge: exact
    /// at quiescence).
    pub fn sleeping_workers(&self) -> usize {
        self.core.shards.iter().map(|s| s.sleep.sleepers()).sum()
    }

    /// The adaptive splitter's idle gauge: committed-plus-announcing
    /// sleepers from one `Relaxed` load per pool of the sleep
    /// subsystem's packed eventcount word. Cheap enough to poll from
    /// hot loops; may lag in-flight transitions by a scan (see
    /// [`crate::sleep`]).
    pub fn sleepers_hint(&self) -> usize {
        self.core
            .shards
            .iter()
            .map(|s| s.sleep.sleepers_hint())
            .sum()
    }

    /// Live sleep/wake-subsystem counters since pool creation, merged
    /// over every pool's sleep subsystem.
    pub fn sleep_stats(&self) -> SleepStats {
        self.core.sleep_stats()
    }

    /// A live telemetry snapshot, if tracing was configured. Workers keep
    /// running (and recording) while this executes; for counts that must
    /// be exact, stop the pool with [`ThreadPool::shutdown`] instead.
    #[cfg(feature = "telemetry")]
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.core.registry.as_ref().map(|r| {
            let mut snap = r.snapshot();
            self.core.stamp_injectors(&mut snap);
            self.core.stamp_sleep(&mut snap);
            self.core.stamp_par(&mut snap);
            self.core.stamp_topology(&mut snap);
            self.core.stamp_batch(&mut snap);
            snap
        })
    }

    /// Stops the pool (joining every worker) and returns the final,
    /// quiescent statistics and telemetry. Unlike [`ThreadPool::stats`] /
    /// [`ThreadPool::telemetry_snapshot`], nothing can race this: the
    /// trace, the per-worker counters, and the aggregate are mutually
    /// consistent.
    pub fn shutdown(mut self) -> PoolReport {
        // Flag first, wake second: `notify_shutdown`'s epoch bump makes
        // the flag visible to any worker racing into a park (its commit
        // fails or its wake arrives), so no worker can sleep through
        // shutdown.
        self.core.shutdown.store(true, Ordering::Release);
        for shard in &self.core.shards {
            shard.sleep.notify_shutdown();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Workers drain their own pool's injector before exiting, but a
        // submission racing the shutdown flag could in principle land
        // after the last worker's final sweep. Run (not leak) any
        // stragglers here — every accepted job executes exactly once.
        // Workers are gone, so this thread is the only consumer.
        for shard in &self.core.shards {
            while let Some((word, _)) = shard.injector.pop_blocking(0) {
                // SAFETY: the word came out of the injector exactly once,
                // so this is the job's single execution.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                    JobRef::from_word(word).execute()
                }));
            }
        }
        let stats = self.stats();
        debug_assert!(
            stats.attempts_balance(),
            "steal accounting identity violated: {stats:?}"
        );
        // Per-backend structural zeros (checked in release builds too —
        // one comparison each, once, at shutdown): a backend that cannot
        // abort must show no aborts, and an exactly-once backend must
        // show no duplicates. Together with `attempts_balance` these pin
        // the five-way identity down to the four-way form each backend
        // actually promises.
        let backend = self.core.backend;
        assert!(
            backend.can_abort() || stats.aborts == 0,
            "backend {} cannot abort, yet aborts = {}",
            backend.name(),
            stats.aborts
        );
        assert!(
            !backend.exact() || stats.duplicates == 0,
            "backend {} is exact, yet duplicates = {}",
            backend.name(),
            stats.duplicates
        );
        debug_assert!(
            stats.parks_balance(),
            "park accounting identity violated: parks {} != unparks {}",
            stats.parks,
            stats.unparks
        );
        // The locality split rides outside the identity but must stay a
        // sub-count of hits, and a flat topology must show the
        // structural zero (both checked in release builds too — they
        // pin the `steals = local + remote` decomposition).
        assert!(
            stats.locality_consistent(),
            "remote steals exceed steals: {stats:?}"
        );
        assert!(
            self.core.shards.len() > 1 || stats.remote_attempts == 0,
            "flat pool recorded remote attempts: {}",
            stats.remote_attempts
        );
        // Batching rides outside the identity the same way the locality
        // split does: every batched task is already a counted steal, a
        // batch moves at least two of them, and under the single-steal
        // default no batch can form at all (structural zeros).
        assert!(
            stats.batch_consistent(),
            "batch accounting inconsistent: {stats:?}"
        );
        assert!(
            self.core.batch.is_batched() || (stats.batch_steals == 0 && stats.batched_tasks == 0),
            "single-steal pool recorded steal batches: batch_steals = {}, batched_tasks = {}",
            stats.batch_steals,
            stats.batched_tasks
        );
        let sleep = self.core.sleep_stats();
        // Every hit-after-unpark is credited to exactly one delivered
        // wake (the condvar fallback's herd makes the correspondence
        // approximate, so the invariant is eventcount-only).
        debug_assert!(
            self.sleep_kind() != SleepKind::Eventcount
                || sleep.wakes_sent >= sleep.hits_after_unpark,
            "wake accounting identity violated: {sleep:?}"
        );
        PoolReport {
            stats,
            per_worker: self.per_worker_stats(),
            per_pool: self.per_pool_stats(),
            pools: self.core.shards.len(),
            backend: backend.name(),
            sleep_kind: self.sleep_kind(),
            sleep,
            #[cfg(feature = "telemetry")]
            telemetry: self.core.registry.as_ref().map(|r| {
                let mut snap = r.snapshot();
                self.core.stamp_injectors(&mut snap);
                self.core.stamp_sleep(&mut snap);
                self.core.stamp_par(&mut snap);
                self.core.stamp_topology(&mut snap);
                self.core.stamp_batch(&mut snap);
                snap
            }),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        for shard in &self.core.shards {
            shard.sleep.notify_shutdown();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
