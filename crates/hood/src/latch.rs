//! Completion latches.
//!
//! A latch starts unset and is set exactly once, when the work it guards
//! completes. Workers *wait* on latches by continuing to find and execute
//! other work (never by blocking on a lock — the runtime is non-blocking
//! in the same sense as the paper's scheduler); external threads wait on a
//! [`LockLatch`], which may sleep.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A one-shot spin latch, probed by workers between work-finding attempts.
#[derive(Debug, Default)]
pub struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    pub fn new() -> Self {
        Self::default()
    }

    /// True once set. Acquire: pairs with [`SpinLatch::set`]'s Release so
    /// the result the latch guards is visible to the prober.
    #[inline]
    pub fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Probes up to `spins` times with cheap Relaxed loads (plus the
    /// architectural spin hint) before one final Acquire probe. A stolen
    /// `join` operand usually completes within a few hundred cycles, so a
    /// short bounded spin here often saves the waiter a full steal scan —
    /// while the bound keeps the non-blocking discipline: the caller
    /// falls back to its existing wait-by-working (and ultimately park)
    /// path. The Relaxed loads only *watch* the flag; whenever the latch
    /// reports set, the Acquire re-load has established the hand-off
    /// ordering.
    #[inline]
    pub fn probe_spin(&self, spins: u32) -> bool {
        for _ in 0..spins {
            if self.set.load(Ordering::Relaxed) {
                // The flag is monotone, so this Acquire load re-observes
                // `true` and synchronizes with the setter.
                return self.set.load(Ordering::Acquire);
            }
            std::hint::spin_loop();
        }
        self.probe()
    }

    /// Sets the latch. Idempotent. Release: publishes the guarded result
    /// to any Acquire probe that observes the flag.
    #[inline]
    pub fn set(&self) {
        self.set.store(true, Ordering::Release);
    }
}

/// A counting latch: starts at `n`, becomes ready when it reaches zero.
/// Used by scopes to wait for all spawned jobs.
#[derive(Debug)]
pub struct CountLatch {
    count: AtomicUsize,
}

impl CountLatch {
    /// A latch expecting `n` completions.
    pub fn new(n: usize) -> Self {
        CountLatch {
            count: AtomicUsize::new(n),
        }
    }

    /// Registers one more expected completion.
    pub fn increment(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completion.
    pub fn decrement(&self) {
        let prev = self.count.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "CountLatch underflow");
    }

    /// True when everything completed.
    #[inline]
    pub fn probe(&self) -> bool {
        self.count.load(Ordering::Acquire) == 0
    }
}

/// A blocking latch for threads *outside* the pool (the caller of
/// `install`). Sleeping here is fine: the waiting thread is not one of the
/// scheduler's processes.
#[derive(Debug, Default)]
pub struct LockLatch {
    done: Mutex<bool>,
    cv: Condvar,
}

impl LockLatch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the latch and wakes waiters.
    pub fn set(&self) {
        let mut done = self.done.lock().unwrap();
        *done = true;
        self.cv.notify_all();
    }

    /// Blocks until set.
    pub fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while !*done {
            done = self.cv.wait(done).unwrap();
        }
    }
}

/// One worker's private sleep slot: a wake flag under its own mutex plus
/// a condvar, padded to a cache line so adjacent workers' parkers never
/// false-share. Unlike a latch this is reusable: [`Parker::prepare`]
/// re-arms the slot before each sleep.
///
/// The flag makes the pair race-free on its own: an [`Parker::unpark`]
/// that lands between `prepare` and [`Parker::park`] leaves the flag set,
/// so the park returns immediately instead of missing the notification.
/// (Whether an unpark may land at all is the sleep subsystem's eventcount
/// protocol — see `crate::sleep`.)
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct Parker {
    wake: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-arms the slot: clears any stale wake left by a cancelled or
    /// raced unpark. Must be called before the worker announces itself
    /// wakeable (pushes onto the sleeper stack).
    pub fn prepare(&self) {
        *self.wake.lock().unwrap() = false;
    }

    /// Blocks until an [`Parker::unpark`] (possibly one that already
    /// happened since the last [`Parker::prepare`]).
    pub fn park(&self) {
        let mut wake = self.wake.lock().unwrap();
        while !*wake {
            wake = self.cv.wait(wake).unwrap();
        }
    }

    /// Blocks until an unpark or until `timeout` elapses. Returns `true`
    /// if woken by an unpark, `false` on timeout.
    pub fn park_timeout(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut wake = self.wake.lock().unwrap();
        while !*wake {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self.cv.wait_timeout(wake, deadline - now).unwrap();
            wake = guard;
        }
        true
    }

    /// Wakes the parked (or about-to-park) owner of this slot.
    pub fn unpark(&self) {
        let mut wake = self.wake.lock().unwrap();
        *wake = true;
        drop(wake);
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spin_latch() {
        let l = SpinLatch::new();
        assert!(!l.probe());
        l.set();
        assert!(l.probe());
        l.set(); // idempotent
        assert!(l.probe());
    }

    #[test]
    fn count_latch() {
        let l = CountLatch::new(2);
        assert!(!l.probe());
        l.decrement();
        assert!(!l.probe());
        l.increment();
        l.decrement();
        l.decrement();
        assert!(l.probe());
    }

    #[test]
    fn parker_unpark_before_park_is_not_lost() {
        let p = Parker::new();
        p.prepare();
        p.unpark();
        p.park(); // returns immediately: the flag latched the wake
    }

    #[test]
    fn parker_timeout_and_rearm() {
        let p = Parker::new();
        p.prepare();
        assert!(!p.park_timeout(std::time::Duration::from_millis(5)));
        p.unpark();
        assert!(p.park_timeout(std::time::Duration::from_millis(5)));
        // prepare clears the stale wake
        p.prepare();
        assert!(!p.park_timeout(std::time::Duration::from_millis(5)));
    }

    #[test]
    fn parker_cross_thread() {
        let p = Arc::new(Parker::new());
        p.prepare();
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            p2.unpark();
        });
        p.park();
        h.join().unwrap();
    }

    #[test]
    fn parker_is_cache_line_padded() {
        assert_eq!(std::mem::align_of::<Parker>() % 128, 0);
    }

    #[test]
    fn lock_latch_cross_thread() {
        let l = Arc::new(LockLatch::new());
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            l2.set();
        });
        l.wait();
        h.join().unwrap();
    }
}
