//! The sleep/wake subsystem: an eventcount that lets idle workers hand
//! their quantum back to the kernel *without* timed parks and lets
//! producers wake exactly as many workers as they made work for.
//!
//! # Why
//!
//! The paper's Section 5 yield discipline exists because a processor
//! that spins (or sleeps blindly) wastes multiprogrammed kernel quanta.
//! Hood's engineering compromise — park an idle worker — was previously
//! approximated here by one pool-wide `Mutex`+`Condvar`: every external
//! submission `notify_all`ed the whole pool (a thundering herd), a
//! worker that checked for work and then parked could miss a wakeup
//! sent in between (a race papered over by a 100 µs park timeout), and
//! a running worker that `pushBottom`ed new work never woke anyone.
//!
//! # The protocol
//!
//! One packed `AtomicU64` word holds `{epoch, announced, sleepers}`:
//!
//! ```text
//! bits  0..16   sleepers   committed sleeping workers
//! bits 16..32   announced  workers between announce and commit/cancel
//! bits 32..64   epoch      bumped by every producer-side notify
//! ```
//!
//! A worker goes to sleep in three observable steps:
//!
//! 1. **announce** — increment `announced`, remembering the `epoch` it
//!    read in the same RMW;
//! 2. **re-scan** — look at every deque and the injector once more;
//!    found work cancels the announce and resumes hunting;
//! 3. **commit** — re-arm its private [`Parker`], push itself onto the
//!    LIFO sleeper stack, then CAS the word from
//!    `{epoch == announced-epoch}` to `{sleepers+1, announced-1}`. A
//!    CAS that observes a moved epoch aborts the sleep (the worker
//!    withdraws from the stack and resumes hunting).
//!
//! A producer publishes its job(s) first, then bumps `epoch` with one
//! `SeqCst` RMW and wakes `min(n_jobs, sleepers)` workers, newest-parked
//! first (LIFO keeps their caches warm).
//!
//! **No lost wakeup, by construction.** The producer's bump and the
//! worker's commit CAS target the same word, so they are totally
//! ordered. If the commit comes first, the bump reads `sleepers ≥ 1`
//! and wakes the worker. If the bump comes first, the commit's epoch
//! check fails and the worker re-scans — and because the announce RMW
//! that read the bumped epoch is an acquire of the producer's release,
//! the re-scan sees the published job. Either way a worker never sleeps
//! on pending work, which is why the park needs no timeout. (The
//! exhaustive interleaving check of this argument lives in
//! [`model`], with non-vacuity variants that delete the re-scan or the
//! epoch check and exhibit the lost wakeup.)
//!
//! One deliberate asymmetry: a *worker* that pushes to its own deque
//! checks the word with a plain load and only pays the RMW when it
//! observes idlers. The unfenced load can miss a concurrent
//! announce/commit (store-buffering), but an owner always drains its
//! own deque before idling, so the job still runs — the miss costs
//! parallelism for one scan, never liveness. External submissions have
//! no such owner, so [`Sleep::notify_jobs`] bumps unconditionally.
//!
//! # Fallback
//!
//! [`SleepKind::CondvarFallback`] keeps the legacy pool-wide lock +
//! `notify_all` + timed-park protocol as a baseline for the ID1
//! experiment (and the `sleep-condvar-fallback` feature flips the
//! default, mirroring PR 4's `seqcst-fallback`).

pub mod model;

use crate::latch::Parker;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

const SLEEPER_ONE: u64 = 1;
const SLEEPERS_MASK: u64 = 0xFFFF;
const ANNOUNCED_ONE: u64 = 1 << 16;
const ANNOUNCED_MASK: u64 = 0xFFFF << 16;
const EPOCH_ONE: u64 = 1 << 32;

#[inline]
fn sleepers_of(word: u64) -> u64 {
    word & SLEEPERS_MASK
}

#[inline]
fn announced_of(word: u64) -> u64 {
    (word & ANNOUNCED_MASK) >> 16
}

#[inline]
fn epoch_of(word: u64) -> u64 {
    word >> 32
}

/// Which sleep/wake implementation a pool uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepKind {
    /// The eventcount protocol: targeted wake-one, untimed parks.
    Eventcount,
    /// The legacy pool-wide `Mutex`+`Condvar`: `notify_all` on every
    /// submission and 100 µs timed parks to paper over the missed-wakeup
    /// race. Kept as the measurable baseline.
    CondvarFallback,
}

// Not a `#[derive(Default)]` because the default variant is
// feature-dependent, mirroring `abp-deque`'s `seqcst-fallback`.
#[allow(clippy::derivable_impls)]
impl Default for SleepKind {
    fn default() -> Self {
        #[cfg(feature = "sleep-condvar-fallback")]
        {
            SleepKind::CondvarFallback
        }
        #[cfg(not(feature = "sleep-condvar-fallback"))]
        {
            SleepKind::Eventcount
        }
    }
}

/// How a committed park ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SleepOutcome {
    /// A producer (or shutdown) sent this worker a wake.
    Woken,
    /// The bounded nap elapsed with no wake (timed policies only; the
    /// eventcount's untimed parks can never produce this).
    TimedOut,
}

/// Scalar sleep/wake counters, readable live and reported at shutdown.
/// `parks`/`unparks` live with the per-worker [`crate::stats`] counters;
/// these are the pool-level ones (producers are not always workers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SleepStats {
    /// Targeted wakes delivered (one per sleeper popped and unparked,
    /// including the shutdown wake-all; the condvar fallback counts the
    /// whole herd each `notify_all`).
    pub wakes_sent: u64,
    /// Wake budget that found the sleeper stack already empty (the
    /// sleeper count read at the bump was stale by pop time).
    pub wakes_skipped: u64,
    /// Wakes whose target worker found no work before committing to
    /// sleep again — the idle-CPU burn metric for trickle loads.
    pub wakes_spurious: u64,
    /// Woken workers that found work on their first post-wake hunt.
    /// For the eventcount, `wakes_sent >= hits_after_unpark` always.
    pub hits_after_unpark: u64,
    /// Timed parks that elapsed without a wake. Zero by construction
    /// under the eventcount (asserted by experiment ID1).
    pub timed_out_parks: u64,
}

/// The per-pool sleep/wake state; one instance lives in the pool's
/// `Shared`.
pub(crate) struct Sleep {
    kind: SleepKind,
    /// The packed eventcount word (see the module doc for the layout).
    word: AtomicU64,
    /// LIFO stack of committed (or committing) sleepers' indices. The
    /// lock is held only for O(sleepers) index pushes/pops — never while
    /// parking, waking, or running jobs.
    stack: Mutex<Vec<usize>>,
    /// One private padded parker per worker.
    parkers: Vec<Parker>,
    // -- condvar fallback state (the legacy protocol) --------------------
    fb_mutex: Mutex<()>,
    fb_cv: Condvar,
    /// Fallback-only gauge of workers currently inside the condvar wait.
    fb_sleepers: AtomicU64,
    // -- counters ---------------------------------------------------------
    wakes_sent: AtomicU64,
    wakes_skipped: AtomicU64,
    wakes_spurious: AtomicU64,
    hits_after_unpark: AtomicU64,
    timed_out_parks: AtomicU64,
}

impl Sleep {
    pub(crate) fn new(num_workers: usize, kind: SleepKind) -> Self {
        assert!(
            num_workers < (1 << 16),
            "the packed eventcount word holds at most 2^16-1 sleepers"
        );
        Sleep {
            kind,
            word: AtomicU64::new(0),
            stack: Mutex::new(Vec::with_capacity(num_workers)),
            parkers: (0..num_workers).map(|_| Parker::new()).collect(),
            fb_mutex: Mutex::new(()),
            fb_cv: Condvar::new(),
            fb_sleepers: AtomicU64::new(0),
            wakes_sent: AtomicU64::new(0),
            wakes_skipped: AtomicU64::new(0),
            wakes_spurious: AtomicU64::new(0),
            hits_after_unpark: AtomicU64::new(0),
            timed_out_parks: AtomicU64::new(0),
        }
    }

    pub(crate) fn kind(&self) -> SleepKind {
        self.kind
    }

    /// Workers currently committed to sleep (eventcount) or inside the
    /// condvar wait (fallback). A gauge: exact at quiescence, may lag by
    /// in-flight transitions otherwise.
    pub(crate) fn sleepers(&self) -> usize {
        match self.kind {
            SleepKind::Eventcount => sleepers_of(self.word.load(Ordering::SeqCst)) as usize,
            SleepKind::CondvarFallback => self.fb_sleepers.load(Ordering::SeqCst) as usize,
        }
    }

    /// Cheapest possible idle gauge, for the data-parallel adaptive
    /// splitter's hot path: one `Relaxed` load of the packed word, no
    /// RMW, no fence. Counts committed sleepers *plus* announced
    /// (mid-protocol) workers — an announcer has already failed a full
    /// hunt, so it wants work just as much as a committed sleeper.
    ///
    /// Race-tolerant by design: a stale read can under-count (a worker
    /// announced after our load — we skip one split and the next
    /// consult sees it) or over-count (the sleeper woke after our load
    /// — we fork one task that gets executed inline or stolen cheaply).
    /// Both failure modes cost a little parallelism or a little
    /// overhead, never correctness or liveness, which is what lets the
    /// splitter consult this on every recursion step.
    pub(crate) fn sleepers_hint(&self) -> usize {
        match self.kind {
            SleepKind::Eventcount => {
                let word = self.word.load(Ordering::Relaxed);
                (sleepers_of(word) + announced_of(word)) as usize
            }
            SleepKind::CondvarFallback => self.fb_sleepers.load(Ordering::Relaxed) as usize,
        }
    }

    pub(crate) fn stats(&self) -> SleepStats {
        SleepStats {
            wakes_sent: self.wakes_sent.load(Ordering::Relaxed),
            wakes_skipped: self.wakes_skipped.load(Ordering::Relaxed),
            wakes_spurious: self.wakes_spurious.load(Ordering::Relaxed),
            hits_after_unpark: self.hits_after_unpark.load(Ordering::Relaxed),
            timed_out_parks: self.timed_out_parks.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn note_spurious_wake(&self) {
        self.wakes_spurious.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_hit_after_unpark(&self) {
        self.hits_after_unpark.fetch_add(1, Ordering::Relaxed);
    }

    // -- worker side (eventcount) -----------------------------------------

    /// Step 1: announce idleness. Returns the epoch token the commit CAS
    /// must re-observe. INV-EC-ANN: the `SeqCst` RMW is an acquire of
    /// every producer bump ordered before it, so work published before an
    /// observed bump is visible to the caller's re-scan.
    pub(crate) fn announce(&self) -> u64 {
        epoch_of(self.word.fetch_add(ANNOUNCED_ONE, Ordering::SeqCst))
    }

    /// Withdraws an announce (the re-scan found work).
    pub(crate) fn cancel_announce(&self) {
        self.word.fetch_sub(ANNOUNCED_ONE, Ordering::SeqCst);
    }

    /// Step 3: attempt to convert the announce into a committed sleep.
    /// Returns `false` (announce consumed, caller resumes hunting) if
    /// the epoch moved since [`Sleep::announce`] — some producer
    /// published work after our re-scan started.
    ///
    /// Ordering of the three sub-steps is load-bearing:
    /// parker re-arm → stack push → CAS. The worker is on the stack
    /// *before* it is counted a sleeper, so a producer that reads
    /// `sleepers ≥ 1` can always pop someone; and the parker is re-armed
    /// *before* the push, so a producer's unpark can never be erased.
    pub(crate) fn try_commit(&self, index: usize, token: u64) -> bool {
        self.parkers[index].prepare();
        self.stack.lock().unwrap().push(index);
        let mut current = self.word.load(Ordering::SeqCst);
        loop {
            if epoch_of(current) != token {
                // Aborted: withdraw. A producer may have popped us
                // already (its wake targeted a worker that never slept);
                // the next prepare() clears the stale flag.
                self.stack.lock().unwrap().retain(|&i| i != index);
                self.word.fetch_sub(ANNOUNCED_ONE, Ordering::SeqCst);
                return false;
            }
            match self.word.compare_exchange(
                current,
                current + SLEEPER_ONE - ANNOUNCED_ONE,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(w) => current = w, // counter churn or epoch bump; re-check
            }
        }
    }

    /// Parks after a successful [`Sleep::try_commit`]. The committed
    /// sleeper slot is released (sleeper count decremented, stack entry
    /// consumed) exactly once, whichever way the park ends.
    pub(crate) fn park_committed(&self, index: usize, timeout: Option<Duration>) -> SleepOutcome {
        let outcome = match timeout {
            None => {
                self.parkers[index].park();
                SleepOutcome::Woken
            }
            Some(d) => {
                if self.parkers[index].park_timeout(d) {
                    SleepOutcome::Woken
                } else {
                    // Timed out: withdraw from the stack — unless a
                    // producer popped us first, in which case its unpark
                    // is already in flight and we wait for it (briefly)
                    // so the wake is consumed, not leaked.
                    let mut stack = self.stack.lock().unwrap();
                    if let Some(pos) = stack.iter().position(|&i| i == index) {
                        stack.remove(pos);
                        drop(stack);
                        self.timed_out_parks.fetch_add(1, Ordering::Relaxed);
                        SleepOutcome::TimedOut
                    } else {
                        drop(stack);
                        self.parkers[index].park();
                        SleepOutcome::Woken
                    }
                }
            }
        };
        self.word.fetch_sub(SLEEPER_ONE, Ordering::SeqCst);
        outcome
    }

    // -- producer side (eventcount) ---------------------------------------

    /// Producer-side notify for `n_jobs` externally published jobs.
    /// INV-EC-PUB: callers publish the jobs *before* this call; the
    /// `SeqCst` bump RMW is the store→load barrier that makes the
    /// publish visible to any worker whose commit CAS loses to it.
    /// Wakes `min(n_jobs, sleepers)` workers, newest-parked first;
    /// `on_event` runs once per budgeted wake with `Some(index)` for a
    /// delivered wake and `None` for a skipped one (for tracing).
    pub(crate) fn notify_jobs(&self, n_jobs: usize, on_event: impl FnMut(Option<usize>)) {
        debug_assert_eq!(self.kind, SleepKind::Eventcount);
        let old = self.word.fetch_add(EPOCH_ONE, Ordering::SeqCst);
        let want = n_jobs.min(sleepers_of(old) as usize);
        self.wake_many(want, on_event);
    }

    /// Producer-side notify for one job a *worker* pushed onto its own
    /// deque. Pays only a relaxed load while the pool is busy; bumps the
    /// epoch (forcing mid-announce workers to re-scan) and wakes at most
    /// one sleeper when idlers are visible. See the module doc for why
    /// the unfenced fast path cannot cost liveness here.
    pub(crate) fn notify_spawn(&self, on_event: impl FnMut(Option<usize>)) {
        debug_assert_eq!(self.kind, SleepKind::Eventcount);
        let word = self.word.load(Ordering::Relaxed);
        if sleepers_of(word) == 0 && announced_of(word) == 0 {
            return;
        }
        let old = self.word.fetch_add(EPOCH_ONE, Ordering::SeqCst);
        let want = 1usize.min(sleepers_of(old) as usize);
        self.wake_many(want, on_event);
    }

    /// Pops up to `want` sleepers (LIFO) and unparks each.
    fn wake_many(&self, want: usize, mut on_event: impl FnMut(Option<usize>)) {
        for _ in 0..want {
            let popped = self.stack.lock().unwrap().pop();
            match popped {
                Some(index) => {
                    self.wakes_sent.fetch_add(1, Ordering::Relaxed);
                    self.parkers[index].unpark();
                    on_event(Some(index));
                }
                None => {
                    // The sleeper we budgeted for withdrew (timed out or
                    // was taken by a racing producer) between our bump
                    // and this pop.
                    self.wakes_skipped.fetch_add(1, Ordering::Relaxed);
                    on_event(None);
                    return;
                }
            }
        }
    }

    /// Shutdown wake-all: bump the epoch so no in-flight commit can
    /// newly sleep against the pre-shutdown epoch, then drain the whole
    /// stack. Callers store the shutdown flag *before* this (workers
    /// re-check it during the re-scan, and the announce-acquires-bump
    /// edge makes the flag visible).
    pub(crate) fn notify_shutdown(&self) {
        match self.kind {
            SleepKind::Eventcount => {
                self.word.fetch_add(EPOCH_ONE, Ordering::SeqCst);
                loop {
                    let popped = self.stack.lock().unwrap().pop();
                    match popped {
                        Some(index) => {
                            self.wakes_sent.fetch_add(1, Ordering::Relaxed);
                            self.parkers[index].unpark();
                        }
                        None => break,
                    }
                }
            }
            SleepKind::CondvarFallback => self.fallback_notify_all(),
        }
    }

    // -- the legacy condvar protocol --------------------------------------

    /// The legacy park: take the pool-wide lock, re-check for work via
    /// `has_work` under it, and nap on the shared condvar with a bounded
    /// timeout (the timeout is what caps the herd protocol's inherent
    /// missed-wakeup race). `timeout` of `None` — the untimed policy —
    /// still naps 100 µs here, because without the eventcount an untimed
    /// park genuinely can miss its wakeup.
    pub(crate) fn fallback_park(
        &self,
        timeout: Option<Duration>,
        has_work: impl FnOnce() -> bool,
    ) -> SleepOutcome {
        let nap = timeout.unwrap_or(Duration::from_micros(100));
        let guard = self.fb_mutex.lock().unwrap();
        if has_work() {
            return SleepOutcome::Woken;
        }
        self.fb_sleepers.fetch_add(1, Ordering::SeqCst);
        let (_guard, res) = self.fb_cv.wait_timeout(guard, nap).unwrap();
        self.fb_sleepers.fetch_sub(1, Ordering::SeqCst);
        if res.timed_out() {
            self.timed_out_parks.fetch_add(1, Ordering::Relaxed);
            SleepOutcome::TimedOut
        } else {
            SleepOutcome::Woken
        }
    }

    /// The legacy thundering herd. `wakes_sent` counts the whole herd
    /// (every currently-parked worker receives the notification).
    pub(crate) fn fallback_notify_all(&self) {
        let herd = self.fb_sleepers.load(Ordering::SeqCst);
        self.wakes_sent.fetch_add(herd, Ordering::Relaxed);
        self.fb_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn word_layout_roundtrip() {
        let w = 5 | (3 << 16) | (7u64 << 32);
        assert_eq!(sleepers_of(w), 5);
        assert_eq!(announced_of(w), 3);
        assert_eq!(epoch_of(w), 7);
        // Epoch overflow wraps off the top without touching the counters.
        let near = 2 | (u64::MAX << 32);
        assert_eq!(sleepers_of(near.wrapping_add(EPOCH_ONE)), 2);
        assert_eq!(epoch_of(near.wrapping_add(EPOCH_ONE)), 0);
    }

    #[test]
    fn default_kind_tracks_feature() {
        #[cfg(feature = "sleep-condvar-fallback")]
        assert_eq!(SleepKind::default(), SleepKind::CondvarFallback);
        #[cfg(not(feature = "sleep-condvar-fallback"))]
        assert_eq!(SleepKind::default(), SleepKind::Eventcount);
    }

    /// Commit succeeds when the epoch stands still, and the producer's
    /// wake pops the committed sleeper (LIFO).
    #[test]
    fn commit_then_wake() {
        let s = Arc::new(Sleep::new(2, SleepKind::Eventcount));
        let t0 = s.announce();
        assert!(s.try_commit(0, t0));
        assert_eq!(s.sleepers(), 1);
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            let mut woken = Vec::new();
            s2.notify_jobs(1, |ev| woken.push(ev));
            woken
        });
        assert_eq!(s.park_committed(0, None), SleepOutcome::Woken);
        assert_eq!(h.join().unwrap(), vec![Some(0)]);
        assert_eq!(s.sleepers(), 0);
        assert_eq!(s.stats().wakes_sent, 1);
    }

    /// A bump between announce and commit aborts the sleep — the closed
    /// missed-wakeup race, at the unit level.
    #[test]
    fn commit_fails_if_epoch_moved() {
        let s = Sleep::new(1, SleepKind::Eventcount);
        let t0 = s.announce();
        s.notify_jobs(1, |_| unreachable!("no sleepers to wake"));
        assert!(!s.try_commit(0, t0));
        assert_eq!(s.sleepers(), 0);
        // The aborted commit consumed the announce.
        assert_eq!(announced_of(s.word.load(Ordering::SeqCst)), 0);
        assert_eq!(s.stats().wakes_sent, 0);
    }

    /// LIFO order: the most recently parked worker is woken first.
    #[test]
    fn wake_is_lifo() {
        let s = Sleep::new(3, SleepKind::Eventcount);
        for i in 0..3 {
            let t = s.announce();
            assert!(s.try_commit(i, t));
        }
        let mut woken = Vec::new();
        s.notify_jobs(2, |ev| woken.push(ev.unwrap()));
        assert_eq!(woken, vec![2, 1]);
        // Consume the parks so the committed sleepers are released.
        for &i in &woken {
            assert_eq!(
                s.park_committed(i, Some(Duration::ZERO)),
                SleepOutcome::Woken
            );
        }
        assert_eq!(
            s.park_committed(0, Some(Duration::ZERO)),
            SleepOutcome::TimedOut
        );
        let st = s.stats();
        assert_eq!(st.wakes_sent, 2);
        assert_eq!(st.timed_out_parks, 1);
        assert_eq!(s.sleepers(), 0);
    }

    /// A wake budgeted from a stale sleeper count lands as `skipped`,
    /// never as a hang or an underflow.
    #[test]
    fn stale_budget_is_skipped() {
        let s = Sleep::new(1, SleepKind::Eventcount);
        let t = s.announce();
        assert!(s.try_commit(0, t));
        let mut woken = Vec::new();
        s.notify_jobs(1, |ev| woken.push(ev.unwrap()));
        // Second producer read sleepers==1 at its bump conceptually, but
        // the stack is already empty.
        let mut skipped = Vec::new();
        s.wake_many(1, |ev| skipped.push(ev));
        assert_eq!(skipped, vec![None]);
        assert_eq!(woken, vec![0]);
        assert_eq!(s.stats().wakes_skipped, 1);
        assert_eq!(s.park_committed(0, None), SleepOutcome::Woken);
    }

    /// notify_spawn is a no-op while nobody is idle, and wakes one
    /// sleeper when somebody is.
    #[test]
    fn spawn_notify_wakes_at_most_one() {
        let s = Sleep::new(2, SleepKind::Eventcount);
        s.notify_spawn(|_| unreachable!("pool busy: no RMW, no wake"));
        assert_eq!(
            epoch_of(s.word.load(Ordering::SeqCst)),
            0,
            "fast path skips the bump"
        );
        for i in 0..2 {
            let t = s.announce();
            assert!(s.try_commit(i, t));
        }
        let mut woken = Vec::new();
        s.notify_spawn(|ev| woken.push(ev.unwrap()));
        assert_eq!(woken, vec![1]);
        // The woken worker stays a counted sleeper until its park
        // returns and it decrements itself.
        assert_eq!(s.sleepers(), 2);
        s.notify_shutdown();
        for i in 0..2 {
            assert_eq!(s.park_committed(i, None), SleepOutcome::Woken);
        }
    }

    /// The relaxed hint tracks committed and announced workers without
    /// any RMW of its own.
    #[test]
    fn sleepers_hint_counts_committed_and_announced() {
        let s = Sleep::new(2, SleepKind::Eventcount);
        assert_eq!(s.sleepers_hint(), 0);
        let t0 = s.announce();
        assert_eq!(s.sleepers_hint(), 1, "announced workers count");
        assert!(s.try_commit(0, t0));
        assert_eq!(s.sleepers_hint(), 1, "announce converted to sleeper");
        let t1 = s.announce();
        assert_eq!(s.sleepers_hint(), 2);
        s.cancel_announce();
        let _ = t1;
        assert_eq!(s.sleepers_hint(), 1);
        s.notify_shutdown();
        assert_eq!(s.park_committed(0, None), SleepOutcome::Woken);
        assert_eq!(s.sleepers_hint(), 0);
    }

    /// The fallback path counts the herd and times out its naps.
    #[test]
    fn fallback_counts_herd_and_timeouts() {
        let s = Arc::new(Sleep::new(2, SleepKind::CondvarFallback));
        assert_eq!(
            s.fallback_park(Some(Duration::from_millis(1)), || false),
            SleepOutcome::TimedOut
        );
        assert_eq!(s.stats().timed_out_parks, 1);
        // A pending-work recheck under the lock skips the nap entirely.
        assert_eq!(s.fallback_park(None, || true), SleepOutcome::Woken);
        let s2 = Arc::clone(&s);
        let h =
            std::thread::spawn(move || s2.fallback_park(Some(Duration::from_secs(5)), || false));
        while s.fb_sleepers.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        s.fallback_notify_all();
        assert_eq!(h.join().unwrap(), SleepOutcome::Woken);
        assert_eq!(s.stats().wakes_sent, 1);
    }
}
