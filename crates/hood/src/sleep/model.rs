//! Exhaustive interleaving check of the eventcount sleep protocol.
//!
//! Same idiom as `abp_deque::model`: a sequentially-consistent small-step
//! state machine, cloned-world DFS over *every* schedule of a small agent
//! set, with protocol invariants asserted at each state and the liveness
//! property checked at each complete schedule.
//!
//! Each agent step is one atomic action of the real protocol:
//!
//! * worker — announce (RMW, captures epoch token) → re-scan (read
//!   `pending`) → parker prepare (clear flag) → stack push → commit CAS
//!   (epoch check) → sleep; a sleeping worker whose flag is set may wake.
//! * producer — publish (`pending += 1`) → epoch bump (RMW, reads the
//!   sleeper count for its wake budget) → pop+unpark per budgeted wake.
//!
//! **Checked property (no lost wakeup / no sleep with pending work):** no
//! complete schedule ends with a published job pending while every worker
//! is asleep with no wake in flight. One awake (or flagged) worker
//! suffices — it hunts until the pool is empty before it can re-announce,
//! and its next re-scan would see the job.
//!
//! **Non-vacuity:** [`Variant::NoRescan`] and [`Variant::NoEpochCas`]
//! each delete one protocol step; the checker exhibits the lost wakeup
//! for both (see the tests), so the two steps are independently
//! load-bearing.

use std::collections::HashSet;

/// Which protocol to explore: the real one, or one of the two
/// deliberately broken mutants used to show the checker has teeth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The shipped protocol: re-scan and epoch-checked commit CAS.
    Full,
    /// Mutant: the worker commits without re-scanning for work after its
    /// announce. A producer that published *before* the announce (so its
    /// bump precedes the token) wakes nobody and fails no CAS.
    NoRescan,
    /// Mutant: the commit ignores the epoch token (unconditional
    /// sleepers+=1). A producer whose bump lands between the re-scan and
    /// the commit reads `sleepers == 0` and wakes nobody.
    NoEpochCas,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum WState {
    Start,
    /// Announced; payload is the epoch token captured by the RMW.
    Announced(u32),
    Rescanned(u32),
    Prepared(u32),
    Pushed(u32),
    Sleeping,
    Awake,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum PState {
    Start,
    Published,
    /// Bumped the epoch; payload is the remaining wake budget.
    Waking(u32),
    Done,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct World {
    sleepers: u32,
    announced: u32,
    epoch: u32,
    stack: Vec<usize>,
    flags: Vec<bool>,
    pending: u32,
    workers: Vec<WState>,
    producers: Vec<PState>,
}

impl World {
    fn new(n_workers: usize, n_producers: usize) -> Self {
        World {
            sleepers: 0,
            announced: 0,
            epoch: 0,
            stack: Vec::new(),
            flags: vec![false; n_workers],
            pending: 0,
            workers: vec![WState::Start; n_workers],
            producers: vec![PState::Start; n_producers],
        }
    }

    /// Structural invariants of the packed word and the sleeper stack,
    /// asserted at every reachable state (any violation panics the test).
    fn check_invariants(&self) {
        let sleeping = self
            .workers
            .iter()
            .filter(|w| matches!(w, WState::Sleeping))
            .count() as u32;
        assert_eq!(
            self.sleepers, sleeping,
            "sleeper count tracks Sleeping workers"
        );
        let mid = self
            .workers
            .iter()
            .filter(|w| {
                matches!(
                    w,
                    WState::Announced(_)
                        | WState::Rescanned(_)
                        | WState::Prepared(_)
                        | WState::Pushed(_)
                )
            })
            .count() as u32;
        assert_eq!(
            self.announced, mid,
            "announced count tracks mid-protocol workers"
        );
        for (pos, &i) in self.stack.iter().enumerate() {
            assert!(
                matches!(self.workers[i], WState::Pushed(_) | WState::Sleeping),
                "stack entries are pushed-or-sleeping workers"
            );
            assert!(
                !self.stack[pos + 1..].contains(&i),
                "stack has no duplicates"
            );
        }
        for (i, w) in self.workers.iter().enumerate() {
            if matches!(w, WState::Sleeping) && !self.flags[i] {
                assert!(
                    self.stack.contains(&i),
                    "an unflagged sleeper must be poppable (else it is unwakeable)"
                );
            }
        }
    }

    /// One atomic worker step; `None` when the worker is done or blocked
    /// in an unwakeable sleep.
    fn step_worker(&self, i: usize, variant: Variant) -> Option<(World, String)> {
        let mut w = self.clone();
        let label;
        match self.workers[i] {
            WState::Start => {
                w.announced += 1;
                w.workers[i] = WState::Announced(w.epoch);
                label = format!("w{i}:announce(e{})", w.epoch);
            }
            WState::Announced(t) => match variant {
                Variant::Full | Variant::NoEpochCas => {
                    if w.pending > 0 {
                        w.announced -= 1;
                        w.workers[i] = WState::Awake;
                        label = format!("w{i}:rescan-hit");
                    } else {
                        w.workers[i] = WState::Rescanned(t);
                        label = format!("w{i}:rescan-miss");
                    }
                }
                Variant::NoRescan => {
                    w.workers[i] = WState::Rescanned(t);
                    label = format!("w{i}:skip-rescan");
                }
            },
            WState::Rescanned(t) => {
                w.flags[i] = false;
                w.workers[i] = WState::Prepared(t);
                label = format!("w{i}:prepare");
            }
            WState::Prepared(t) => {
                w.stack.push(i);
                w.workers[i] = WState::Pushed(t);
                label = format!("w{i}:push");
            }
            WState::Pushed(t) => {
                let commit = match variant {
                    Variant::NoEpochCas => true,
                    Variant::Full | Variant::NoRescan => w.epoch == t,
                };
                if commit {
                    w.sleepers += 1;
                    w.announced -= 1;
                    w.workers[i] = WState::Sleeping;
                    label = format!("w{i}:commit");
                } else {
                    w.stack.retain(|&j| j != i);
                    w.announced -= 1;
                    w.workers[i] = WState::Awake;
                    label = format!("w{i}:cas-fail");
                }
            }
            WState::Sleeping => {
                if !self.flags[i] {
                    return None; // blocked in park
                }
                w.sleepers -= 1;
                w.workers[i] = WState::Awake;
                label = format!("w{i}:wake");
            }
            WState::Awake => return None,
        }
        Some((w, label))
    }

    /// One atomic producer step (each producer publishes one job).
    fn step_producer(&self, p: usize) -> Option<(World, String)> {
        let mut w = self.clone();
        let label;
        match self.producers[p] {
            PState::Start => {
                w.pending += 1;
                w.producers[p] = PState::Published;
                label = format!("p{p}:publish");
            }
            PState::Published => {
                w.epoch += 1;
                let budget = 1u32.min(w.sleepers);
                w.producers[p] = if budget == 0 {
                    PState::Done
                } else {
                    PState::Waking(budget)
                };
                label = format!("p{p}:bump(budget={budget})");
            }
            PState::Waking(n) => match w.stack.pop() {
                Some(j) => {
                    w.flags[j] = true;
                    w.producers[p] = if n == 1 {
                        PState::Done
                    } else {
                        PState::Waking(n - 1)
                    };
                    label = format!("p{p}:wake(w{j})");
                }
                None => {
                    w.producers[p] = PState::Done;
                    label = format!("p{p}:wake-skipped");
                }
            },
            PState::Done => return None,
        }
        Some((w, label))
    }

    /// A complete schedule: no agent has an enabled step. Every worker is
    /// then Awake or in an unflagged sleep, and every producer is Done.
    fn lost_wakeup(&self) -> bool {
        self.pending > 0 && self.workers.iter().all(|w| matches!(w, WState::Sleeping))
    }
}

/// What the exhaustive exploration saw.
#[derive(Debug, Default)]
pub struct Report {
    /// Distinct reachable states.
    pub states: usize,
    /// Distinct complete (fully-terminated) schedules' end states.
    pub terminals: usize,
    /// End states where a job is pending and every worker is unwakeably
    /// asleep — the lost wakeup.
    pub violations: usize,
    /// The schedule that reached the first violation, for the test log.
    pub first_violation: Option<Vec<String>>,
}

/// DFS over every interleaving of `n_workers` sleep attempts and
/// `n_producers` single-job submissions under `variant`.
pub fn explore(variant: Variant, n_workers: usize, n_producers: usize) -> Report {
    let mut report = Report::default();
    let mut seen = HashSet::new();
    let mut trace = Vec::new();
    dfs(
        variant,
        World::new(n_workers, n_producers),
        &mut trace,
        &mut seen,
        &mut report,
    );
    report
}

fn dfs(
    variant: Variant,
    world: World,
    trace: &mut Vec<String>,
    seen: &mut HashSet<World>,
    report: &mut Report,
) {
    world.check_invariants();
    if !seen.insert(world.clone()) {
        return;
    }
    report.states += 1;

    let mut terminal = true;
    for i in 0..world.workers.len() {
        if let Some((next, label)) = world.step_worker(i, variant) {
            terminal = false;
            trace.push(label);
            dfs(variant, next, trace, seen, report);
            trace.pop();
        }
    }
    for p in 0..world.producers.len() {
        if let Some((next, label)) = world.step_producer(p) {
            terminal = false;
            trace.push(label);
            dfs(variant, next, trace, seen, report);
            trace.pop();
        }
    }

    if terminal {
        report.terminals += 1;
        if world.lost_wakeup() {
            report.violations += 1;
            if report.first_violation.is_none() {
                report.first_violation = Some(trace.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_clean(variant: Variant, w: usize, p: usize) {
        let r = explore(variant, w, p);
        assert!(r.terminals > 0, "exploration must complete some schedules");
        assert_eq!(
            r.violations, 0,
            "{variant:?} {w}w+{p}p lost a wakeup; first schedule: {:?}",
            r.first_violation
        );
    }

    #[test]
    fn full_protocol_clean_1w_1p() {
        assert_clean(Variant::Full, 1, 1);
    }

    #[test]
    fn full_protocol_clean_2w_1p() {
        assert_clean(Variant::Full, 2, 1);
    }

    #[test]
    fn full_protocol_clean_1w_2p() {
        assert_clean(Variant::Full, 1, 2);
    }

    /// Non-vacuity: deleting the post-announce re-scan loses the wakeup
    /// (producer publishes and bumps before the worker's announce; no
    /// sleeper to wake, no epoch movement after the token, so the worker
    /// commits against a world that already holds a job).
    #[test]
    fn no_rescan_loses_wakeup() {
        let r = explore(Variant::NoRescan, 1, 1);
        assert!(
            r.violations > 0,
            "the re-scan must be load-bearing, or the model is vacuous"
        );
    }

    /// Non-vacuity: deleting the epoch-checked CAS loses the wakeup
    /// (producer bumps between the worker's re-scan and its commit;
    /// `sleepers` still reads 0 at the bump, and nothing fails the
    /// commit).
    #[test]
    fn no_epoch_cas_loses_wakeup() {
        let r = explore(Variant::NoEpochCas, 1, 1);
        assert!(
            r.violations > 0,
            "the epoch CAS must be load-bearing, or the model is vacuous"
        );
    }

    /// The broken variants stay broken with more agents too — and the
    /// full protocol's state space is genuinely explored (not a single
    /// degenerate path).
    #[test]
    fn model_explores_a_real_state_space() {
        let r = explore(Variant::Full, 2, 1);
        assert!(
            r.states > 100,
            "2w+1p should reach >100 states, got {}",
            r.states
        );
        let r = explore(Variant::NoEpochCas, 2, 1);
        assert!(r.violations > 0);
    }
}
