//! Slice-level parallel helpers built on [`crate::join()`](crate::join::join): the small,
//! practical API layer a downstream user reaches for before writing
//! explicit joins (a deliberately minimal analog of data-parallel
//! libraries' cores). The richer combinator surface lives in
//! [`crate::par`]; these helpers remain as the stable flat-function
//! entry points and now share its adaptive splitter.
//!
//! All helpers are plain recursive divide-and-conquer over `join`, so
//! they inherit the scheduler's properties: depth-first execution on one
//! process, breadth-first stealing from many, and graceful degradation
//! when the kernel takes processors away. Outside a pool they run
//! sequentially.
//!
//! # The `grain` parameter
//!
//! * `grain == 0` — **auto** (recommended): leaf size is decided at run
//!   time by the adaptive [`Splitter`](crate::par::Splitter), which
//!   consults the pool's idle-worker gauge. Historically `0` was
//!   silently clamped to `1` — the worst possible grain, forking down
//!   to single elements — so reusing the old footgun value as the
//!   "let the runtime decide" switch is strictly an improvement.
//! * `grain >= 1` — **legacy explicit grain**: classic eager recursion
//!   down to leaves of at most `grain` elements, regardless of pool
//!   load. Pick it so a leaf is ≥ a few microseconds of work. Still
//!   useful for reproducing fixed task-DAG shapes (the experiment
//!   suites do) or when the workload is known to saturate the pool.

use crate::join::join;
use crate::par::split::Splitter;
use std::mem::MaybeUninit;

/// The splitter implementing a helper's `grain` contract: `0` = adaptive
/// (pool policy), `>= 1` = legacy eager grain.
fn splitter_for(grain: usize) -> Splitter {
    if grain == 0 {
        Splitter::new()
    } else {
        Splitter::eager(grain)
    }
}

/// Applies `f` to every element, potentially in parallel.
pub fn for_each_mut<T, F>(slice: &mut [T], grain: usize, f: &F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    fn rec<T, F>(v: &mut [T], mut sp: Splitter, f: &F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        if !sp.should_split(v.len()) {
            for x in v {
                f(x);
            }
            return;
        }
        let mid = v.len() / 2;
        let (lo, hi) = v.split_at_mut(mid);
        join(|| rec(lo, sp, f), || rec(hi, sp, f));
    }
    rec(slice, splitter_for(grain), f);
}

/// Maps every element and folds the results with an associative
/// `reduce`, returning `identity` for empty input. The reduction tree
/// follows the recursion, so `reduce` must be associative and `identity`
/// a two-sided identity for it; neither needs to be commutative.
///
/// ```
/// use hood::{map_reduce, ThreadPool};
///
/// let pool = ThreadPool::new(4);
/// let squares = pool.install(|| {
///     let v: Vec<u64> = (1..=100).collect();
///     map_reduce(&v, 0, 0u64, &|&x| x * x, &|a, b| a + b)
/// });
/// assert_eq!(squares, 100 * 101 * 201 / 6);
/// ```
pub fn map_reduce<T, R, M, Rd>(slice: &[T], grain: usize, identity: R, map: &M, reduce: &Rd) -> R
where
    T: Sync,
    R: Send + Clone,
    M: Fn(&T) -> R + Sync,
    Rd: Fn(R, R) -> R + Sync,
{
    fn rec<T, R, M, Rd>(v: &[T], mut sp: Splitter, identity: R, map: &M, reduce: &Rd) -> R
    where
        T: Sync,
        R: Send + Clone,
        M: Fn(&T) -> R + Sync,
        Rd: Fn(R, R) -> R + Sync,
    {
        if !sp.should_split(v.len()) {
            return v.iter().map(map).fold(identity, reduce);
        }
        let mid = v.len() / 2;
        let (lo, hi) = v.split_at(mid);
        let id_hi = identity.clone();
        let (a, b) = join(
            || rec(lo, sp, identity, map, reduce),
            || rec(hi, sp, id_hi, map, reduce),
        );
        reduce(a, b)
    }
    rec(slice, splitter_for(grain), identity, map, reduce)
}

/// Parallel unstable sort (three-way quicksort, `std` sequential
/// leaves). Deterministic pivot choice keeps runs reproducible. This is
/// [`crate::par::par_sort_unstable`] under its historical flat name: the
/// fork cadence follows the pool's [`abp_core::SplitKind`] policy.
pub fn sort_unstable<T: Ord + Send>(slice: &mut [T]) {
    crate::par::sort::sort_with(slice, Splitter::new().with_min_len(512));
}

/// Parallel map into a fresh `Vec`, preserving element order.
///
/// Results are written straight into one pre-sized spine — a single
/// allocation, no `Default` pre-fill (the `R: Default + Clone` bounds of
/// earlier versions are gone), no per-leaf buffers. If `map` panics the
/// spine is abandoned with length zero: already-written elements leak
/// rather than double-drop.
pub fn map_collect<T, R, M>(slice: &[T], grain: usize, map: &M) -> Vec<R>
where
    T: Sync,
    R: Send,
    M: Fn(&T) -> R + Sync,
{
    let len = slice.len();
    let mut out: Vec<R> = Vec::with_capacity(len);
    let written = fill_map(
        slice,
        &mut out.spare_capacity_mut()[..len],
        splitter_for(grain),
        map,
    );
    assert_eq!(written, len, "fill_map under-filled its spine");
    // SAFETY: exactly `len` slots were written (checked above), each
    // exactly once (disjoint `split_at_mut` halves).
    unsafe { out.set_len(len) };
    out
}

/// Writes `map(input[i])` into `output[i]` for every `i`; returns the
/// count written.
fn fill_map<T, R, M>(input: &[T], output: &mut [MaybeUninit<R>], mut sp: Splitter, map: &M) -> usize
where
    T: Sync,
    R: Send,
    M: Fn(&T) -> R + Sync,
{
    debug_assert_eq!(input.len(), output.len());
    if !sp.should_split(input.len()) {
        for (o, i) in output.iter_mut().zip(input) {
            *o = MaybeUninit::new(map(i));
        }
        return input.len();
    }
    let mid = input.len() / 2;
    let (in_lo, in_hi) = input.split_at(mid);
    let (out_lo, out_hi) = output.split_at_mut(mid);
    let (a, b) = join(
        || fill_map(in_lo, out_lo, sp, map),
        || fill_map(in_hi, out_hi, sp, map),
    );
    a + b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn for_each_mut_touches_everything() {
        let pool = ThreadPool::new(4);
        let mut v: Vec<u64> = (0..10_000).collect();
        pool.install(|| for_each_mut(&mut v, 64, &|x| *x *= 2));
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, 2 * i as u64);
        }
    }

    #[test]
    fn for_each_mut_auto_grain() {
        let pool = ThreadPool::new(4);
        let mut v: Vec<u64> = (0..10_000).collect();
        pool.install(|| for_each_mut(&mut v, 0, &|x| *x *= 2));
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, 2 * i as u64);
        }
    }

    #[test]
    fn for_each_empty_and_tiny() {
        let pool = ThreadPool::new(2);
        let mut empty: Vec<u32> = vec![];
        pool.install(|| for_each_mut(&mut empty, 8, &|x| *x += 1));
        let mut one = vec![5u32];
        pool.install(|| for_each_mut(&mut one, 8, &|x| *x += 1));
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn map_reduce_sums() {
        let pool = ThreadPool::new(4);
        let v: Vec<u64> = (1..=10_000).collect();
        let s = pool.install(|| map_reduce(&v, 128, 0u64, &|&x| x, &|a, b| a + b));
        assert_eq!(s, 10_000 * 10_001 / 2);
        let auto = pool.install(|| map_reduce(&v, 0, 0u64, &|&x| x, &|a, b| a + b));
        assert_eq!(auto, s);
    }

    #[test]
    fn map_reduce_non_commutative_associative() {
        // String concatenation is associative but not commutative; order
        // must be preserved.
        let pool = ThreadPool::new(4);
        let v: Vec<u32> = (0..200).collect();
        let s = pool
            .install(|| map_reduce(&v, 16, String::new(), &|x| format!("{x},"), &|a, b| a + &b));
        let expect: String = (0..200).map(|x| format!("{x},")).collect();
        assert_eq!(s, expect);
    }

    #[test]
    fn map_reduce_empty_returns_identity() {
        let v: Vec<u32> = vec![];
        let r = map_reduce(&v, 8, 42u64, &|&x| x as u64, &|a, b| a + b);
        assert_eq!(r, 42);
    }

    #[test]
    fn parallel_sort_sorts() {
        use abp_dag::DetRng;
        let pool = ThreadPool::new(4);
        let mut rng = DetRng::new(99);
        let mut v: Vec<u64> = (0..100_000).map(|_| rng.below(1_000)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        pool.install(|| sort_unstable(&mut v));
        assert_eq!(v, expect);
    }

    #[test]
    fn parallel_sort_edge_cases() {
        let pool = ThreadPool::new(2);
        let mut empty: Vec<u8> = vec![];
        pool.install(|| sort_unstable(&mut empty));
        let mut rev: Vec<u32> = (0..5_000).rev().collect();
        pool.install(|| sort_unstable(&mut rev));
        assert!(rev.windows(2).all(|w| w[0] <= w[1]));
        let mut same = vec![7u8; 10_000];
        pool.install(|| sort_unstable(&mut same));
        assert!(same.iter().all(|&x| x == 7));
    }

    #[test]
    fn map_collect_preserves_order() {
        let pool = ThreadPool::new(3);
        let v: Vec<u32> = (0..5_000).collect();
        let out = pool.install(|| map_collect(&v, 100, &|&x| x as u64 * 3));
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i as u64 * 3);
        }
    }

    /// `map_collect` no longer needs `R: Default + Clone` — the spine is
    /// written in place, so non-defaultable results work.
    #[test]
    fn map_collect_non_default_type() {
        struct NoDefault(u64);
        let pool = ThreadPool::new(2);
        let v: Vec<u32> = (0..3_000).collect();
        let out = pool.install(|| map_collect(&v, 0, &|&x| NoDefault(x as u64 + 1)));
        for (i, x) in out.iter().enumerate() {
            assert_eq!(x.0, i as u64 + 1);
        }
    }

    #[test]
    fn helpers_work_outside_pool_sequentially() {
        let mut v = vec![3u32, 1, 2];
        sort_unstable(&mut v);
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(map_reduce(&v, 1, 0u32, &|&x| x, &|a, b| a + b), 6);
        assert_eq!(map_reduce(&v, 0, 0u32, &|&x| x, &|a, b| a + b), 6);
        assert_eq!(map_collect(&v, 0, &|&x| x * 2), vec![2, 4, 6]);
    }
}
