//! Slice-level parallel helpers built on [`crate::join()`](crate::join::join): the small,
//! practical API layer a downstream user reaches for before writing
//! explicit joins (a deliberately minimal analog of data-parallel
//! libraries' cores).
//!
//! All helpers are plain recursive divide-and-conquer over `join`, so
//! they inherit the scheduler's properties: depth-first execution on one
//! process, breadth-first stealing from many, and graceful degradation
//! when the kernel takes processors away. Outside a pool they run
//! sequentially. The `grain` parameter bounds leaf size; pick it so a
//! leaf is ≥ a few microseconds of work.

use crate::join::join;

/// Applies `f` to every element, potentially in parallel.
pub fn for_each_mut<T, F>(slice: &mut [T], grain: usize, f: &F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let grain = grain.max(1);
    if slice.len() <= grain {
        for x in slice {
            f(x);
        }
        return;
    }
    let mid = slice.len() / 2;
    let (lo, hi) = slice.split_at_mut(mid);
    join(|| for_each_mut(lo, grain, f), || for_each_mut(hi, grain, f));
}

/// Maps every element and folds the results with an associative
/// `reduce`, returning `identity` for empty input. The reduction tree
/// follows the recursion, so `reduce` must be associative and `identity`
/// a two-sided identity for it; neither needs to be commutative.
///
/// ```
/// use hood::{map_reduce, ThreadPool};
///
/// let pool = ThreadPool::new(4);
/// let squares = pool.install(|| {
///     let v: Vec<u64> = (1..=100).collect();
///     map_reduce(&v, 8, 0u64, &|&x| x * x, &|a, b| a + b)
/// });
/// assert_eq!(squares, 100 * 101 * 201 / 6);
/// ```
pub fn map_reduce<T, R, M, Rd>(slice: &[T], grain: usize, identity: R, map: &M, reduce: &Rd) -> R
where
    T: Sync,
    R: Send + Clone,
    M: Fn(&T) -> R + Sync,
    Rd: Fn(R, R) -> R + Sync,
{
    let grain = grain.max(1);
    if slice.len() <= grain {
        return slice.iter().map(map).fold(identity, reduce);
    }
    let mid = slice.len() / 2;
    let (lo, hi) = slice.split_at(mid);
    let id_hi = identity.clone();
    let (a, b) = join(
        || map_reduce(lo, grain, identity, map, reduce),
        || map_reduce(hi, grain, id_hi, map, reduce),
    );
    reduce(a, b)
}

/// Parallel unstable sort (three-way quicksort with insertion-sorted
/// leaves). Deterministic pivot choice keeps runs reproducible.
pub fn sort_unstable<T: Ord + Send>(slice: &mut [T]) {
    const GRAIN: usize = 512;
    fn rec<T: Ord + Send>(v: &mut [T]) {
        if v.len() <= GRAIN {
            v.sort_unstable();
            return;
        }
        // Median-of-three pivot.
        let (a, b, c) = (0, v.len() / 2, v.len() - 1);
        let med = if v[a] < v[b] {
            if v[b] < v[c] {
                b
            } else if v[a] < v[c] {
                c
            } else {
                a
            }
        } else if v[a] < v[c] {
            a
        } else if v[b] < v[c] {
            c
        } else {
            b
        };
        v.swap(med, b);
        // Three-way partition around v[b]'s value via index juggling.
        let (mut lt, mut i, mut gt) = (0usize, 0usize, v.len());
        let mut pivot_at = b;
        while i < gt {
            use std::cmp::Ordering::*;
            match v[i].cmp(&v[pivot_at]) {
                Less => {
                    if pivot_at == lt {
                        pivot_at = i;
                    }
                    v.swap(lt, i);
                    lt += 1;
                    i += 1;
                }
                Greater => {
                    gt -= 1;
                    if pivot_at == gt {
                        pivot_at = i;
                    }
                    v.swap(i, gt);
                }
                Equal => i += 1,
            }
        }
        let (lo, rest) = v.split_at_mut(lt);
        let hi = &mut rest[gt - lt..];
        join(|| rec(lo), || rec(hi));
    }
    rec(slice);
}

/// Parallel map into a fresh `Vec`, preserving element order.
pub fn map_collect<T, R, M>(slice: &[T], grain: usize, map: &M) -> Vec<R>
where
    T: Sync,
    R: Send + Default + Clone,
    M: Fn(&T) -> R + Sync,
{
    let mut out = vec![R::default(); slice.len()];
    fill_map(slice, &mut out, grain.max(1), map);
    out
}

fn fill_map<T, R, M>(input: &[T], output: &mut [R], grain: usize, map: &M)
where
    T: Sync,
    R: Send,
    M: Fn(&T) -> R + Sync,
{
    debug_assert_eq!(input.len(), output.len());
    if input.len() <= grain {
        for (o, i) in output.iter_mut().zip(input) {
            *o = map(i);
        }
        return;
    }
    let mid = input.len() / 2;
    let (in_lo, in_hi) = input.split_at(mid);
    let (out_lo, out_hi) = output.split_at_mut(mid);
    join(
        || fill_map(in_lo, out_lo, grain, map),
        || fill_map(in_hi, out_hi, grain, map),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn for_each_mut_touches_everything() {
        let pool = ThreadPool::new(4);
        let mut v: Vec<u64> = (0..10_000).collect();
        pool.install(|| for_each_mut(&mut v, 64, &|x| *x *= 2));
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, 2 * i as u64);
        }
    }

    #[test]
    fn for_each_empty_and_tiny() {
        let pool = ThreadPool::new(2);
        let mut empty: Vec<u32> = vec![];
        pool.install(|| for_each_mut(&mut empty, 8, &|x| *x += 1));
        let mut one = vec![5u32];
        pool.install(|| for_each_mut(&mut one, 8, &|x| *x += 1));
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn map_reduce_sums() {
        let pool = ThreadPool::new(4);
        let v: Vec<u64> = (1..=10_000).collect();
        let s = pool.install(|| map_reduce(&v, 128, 0u64, &|&x| x, &|a, b| a + b));
        assert_eq!(s, 10_000 * 10_001 / 2);
    }

    #[test]
    fn map_reduce_non_commutative_associative() {
        // String concatenation is associative but not commutative; order
        // must be preserved.
        let pool = ThreadPool::new(4);
        let v: Vec<u32> = (0..200).collect();
        let s = pool
            .install(|| map_reduce(&v, 16, String::new(), &|x| format!("{x},"), &|a, b| a + &b));
        let expect: String = (0..200).map(|x| format!("{x},")).collect();
        assert_eq!(s, expect);
    }

    #[test]
    fn map_reduce_empty_returns_identity() {
        let v: Vec<u32> = vec![];
        let r = map_reduce(&v, 8, 42u64, &|&x| x as u64, &|a, b| a + b);
        assert_eq!(r, 42);
    }

    #[test]
    fn parallel_sort_sorts() {
        use abp_dag::DetRng;
        let pool = ThreadPool::new(4);
        let mut rng = DetRng::new(99);
        let mut v: Vec<u64> = (0..100_000).map(|_| rng.below(1_000)).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        pool.install(|| sort_unstable(&mut v));
        assert_eq!(v, expect);
    }

    #[test]
    fn parallel_sort_edge_cases() {
        let pool = ThreadPool::new(2);
        let mut empty: Vec<u8> = vec![];
        pool.install(|| sort_unstable(&mut empty));
        let mut rev: Vec<u32> = (0..5_000).rev().collect();
        pool.install(|| sort_unstable(&mut rev));
        assert!(rev.windows(2).all(|w| w[0] <= w[1]));
        let mut same = vec![7u8; 10_000];
        pool.install(|| sort_unstable(&mut same));
        assert!(same.iter().all(|&x| x == 7));
    }

    #[test]
    fn map_collect_preserves_order() {
        let pool = ThreadPool::new(3);
        let v: Vec<u32> = (0..5_000).collect();
        let out = pool.install(|| map_collect(&v, 100, &|&x| x as u64 * 3));
        for (i, &x) in out.iter().enumerate() {
            assert_eq!(x, i as u64 * 3);
        }
    }

    #[test]
    fn helpers_work_outside_pool_sequentially() {
        let mut v = vec![3u32, 1, 2];
        sort_unstable(&mut v);
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(map_reduce(&v, 1, 0u32, &|&x| x, &|a, b| a + b), 6);
    }
}
