//! Per-worker and aggregate scheduler statistics.
//!
//! Every completed `popTop` against a victim — and every counted poll
//! of the external-submission injector — is counted once as a
//! `steal_attempt` and once under exactly one outcome, so the identity
//!
//! ```text
//! steal_attempts == steals + aborts + empties + injects + duplicates
//! ```
//!
//! holds (injector polls land in `injects` on a grab and in `empties`
//! on a miss) and
//! it holds for each worker and for the aggregate (checked in the tests
//! and relied on by the telemetry integration tests, which reconcile
//! these counters against the event trace).
//!
//! Under the federated topology, `remote_steals` additionally splits
//! `steals` by locality (`steals == local + remote`) without entering
//! the identity: it counts hits whose victim lives in a different pool
//! than the thief, and is structurally zero on a flat single-pool
//! configuration (asserted at shutdown).
//!
//! Batched stealing (the `BatchKind::Half` policy) adds a second
//! outside-the-identity split: a batched grab of `n` tasks records `n`
//! attempts and `n` steals — so the five-way identity and the locality
//! split are untouched — plus one `batch_steals` and `n`
//! `batched_tasks` alongside ([`PoolStats::batch_consistent`]). Under
//! the single-steal default both are structurally zero (asserted at
//! shutdown).

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters maintained by one worker. Padded to a cache line so workers
/// never false-share their hot counters.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct WorkerStats {
    /// Jobs executed (assigned-node executions, in the paper's terms).
    pub jobs: AtomicU64,
    /// `popTop` invocations completed against victims.
    pub steal_attempts: AtomicU64,
    /// Steal attempts that returned a job.
    pub steals: AtomicU64,
    /// Steal attempts that lost a `cas` race.
    pub aborts: AtomicU64,
    /// Successful steals whose victim belonged to a different pool than
    /// this worker (sub-count of `steals`; structurally zero when the
    /// topology is a single flat pool).
    pub remote_steals: AtomicU64,
    /// Completed steal attempts (any outcome) whose victim belonged to
    /// a different pool — the scan policy's own property, independent of
    /// whether the victim happened to hold work. Sub-count of
    /// `steal_attempts`; structurally zero on a flat topology.
    pub remote_attempts: AtomicU64,
    /// Steal attempts that found the victim's deque empty, plus
    /// injector polls that found the injector empty (or contended).
    pub empties: AtomicU64,
    /// Counted injector polls that grabbed an externally submitted job.
    pub injects: AtomicU64,
    /// Steal attempts that reached a task another worker had already
    /// extracted (a multiplicity-relaxed backend's lost once-guard).
    /// Structurally zero on exact backends — asserted at shutdown.
    pub duplicates: AtomicU64,
    /// yield system calls between steal scans.
    pub yields: AtomicU64,
    /// Times this worker parked for lack of work.
    pub parks: AtomicU64,
    /// Times this worker returned from a park. Every park ends in exactly
    /// one unpark (wake or timeout), so `parks == unparks` at shutdown —
    /// the sleep-subsystem analogue of `attempts_balance`.
    pub unparks: AtomicU64,
    /// Multi-task batched grabs this worker performed (a `steal_batch`
    /// that returned n >= 2 tasks counts one batch). Rides outside the
    /// attempts identity — each task in the batch is still recorded as
    /// one attempt and one steal. Structurally zero under the
    /// single-steal default policy (asserted at shutdown).
    pub batch_steals: AtomicU64,
    /// Tasks obtained through those batched grabs (sub-count of
    /// `steals`; at least `2 * batch_steals` by definition of a batch).
    pub batched_tasks: AtomicU64,
    /// Forks taken by the data-parallel adaptive splitter (each is one
    /// extra `join` operand pushed to this worker's deque).
    pub par_splits: AtomicU64,
    /// Splittable ranges (`len ≥ 2`) the splitter instead ran
    /// sequentially — the adaptive layer's "everyone is busy, don't
    /// fork" fast path.
    pub par_seq: AtomicU64,
}

impl WorkerStats {
    /// A point-in-time copy of this worker's counters.
    pub fn snapshot(&self) -> PoolStats {
        PoolStats {
            jobs: self.jobs.load(Ordering::Relaxed),
            steal_attempts: self.steal_attempts.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            remote_steals: self.remote_steals.load(Ordering::Relaxed),
            remote_attempts: self.remote_attempts.load(Ordering::Relaxed),
            empties: self.empties.load(Ordering::Relaxed),
            injects: self.injects.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            yields: self.yields.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            unparks: self.unparks.load(Ordering::Relaxed),
            batch_steals: self.batch_steals.load(Ordering::Relaxed),
            batched_tasks: self.batched_tasks.load(Ordering::Relaxed),
            par_splits: self.par_splits.load(Ordering::Relaxed),
            par_seq: self.par_seq.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time aggregate over all workers (or a copy of one worker's
/// counters — see [`WorkerStats::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    pub jobs: u64,
    pub steal_attempts: u64,
    pub steals: u64,
    pub aborts: u64,
    /// Hits on victims outside the thief's pool (`steals = local +
    /// remote`; outside the attempts identity).
    pub remote_steals: u64,
    /// Completed attempts on victims outside the thief's pool
    /// (sub-count of `steal_attempts`, outside the identity).
    pub remote_attempts: u64,
    pub empties: u64,
    pub injects: u64,
    pub duplicates: u64,
    pub yields: u64,
    pub parks: u64,
    pub unparks: u64,
    /// Multi-task batched grabs (outside the attempts identity; zero
    /// under the single-steal default).
    pub batch_steals: u64,
    /// Tasks obtained via batched grabs (sub-count of `steals`).
    pub batched_tasks: u64,
    pub par_splits: u64,
    pub par_seq: u64,
}

impl PoolStats {
    /// Sums the per-worker counters.
    pub fn aggregate(workers: &[WorkerStats]) -> Self {
        let mut s = PoolStats::default();
        for w in workers {
            s.jobs += w.jobs.load(Ordering::Relaxed);
            s.steal_attempts += w.steal_attempts.load(Ordering::Relaxed);
            s.steals += w.steals.load(Ordering::Relaxed);
            s.aborts += w.aborts.load(Ordering::Relaxed);
            s.remote_steals += w.remote_steals.load(Ordering::Relaxed);
            s.remote_attempts += w.remote_attempts.load(Ordering::Relaxed);
            s.empties += w.empties.load(Ordering::Relaxed);
            s.injects += w.injects.load(Ordering::Relaxed);
            s.duplicates += w.duplicates.load(Ordering::Relaxed);
            s.yields += w.yields.load(Ordering::Relaxed);
            s.parks += w.parks.load(Ordering::Relaxed);
            s.unparks += w.unparks.load(Ordering::Relaxed);
            s.batch_steals += w.batch_steals.load(Ordering::Relaxed);
            s.batched_tasks += w.batched_tasks.load(Ordering::Relaxed);
            s.par_splits += w.par_splits.load(Ordering::Relaxed);
            s.par_seq += w.par_seq.load(Ordering::Relaxed);
        }
        s
    }

    /// Fraction of completed steal attempts that succeeded.
    pub fn steal_success_rate(&self) -> f64 {
        if self.steal_attempts == 0 {
            0.0
        } else {
            self.steals as f64 / self.steal_attempts as f64
        }
    }

    /// True iff every attempt is accounted for by exactly one outcome.
    /// The `duplicates` term is structurally zero on exact backends, so
    /// for them this is the familiar four-way identity.
    pub fn attempts_balance(&self) -> bool {
        self.steal_attempts
            == self.steals + self.aborts + self.empties + self.injects + self.duplicates
    }

    /// Steals whose victim shared the thief's pool.
    pub fn local_steals(&self) -> u64 {
        self.steals - self.remote_steals
    }

    /// True iff the locality split is consistent: each remote counter is
    /// a sub-count of its total, and a remote hit is a remote attempt.
    pub fn locality_consistent(&self) -> bool {
        self.remote_steals <= self.steals
            && self.remote_steals <= self.remote_attempts
            && self.remote_attempts <= self.steal_attempts
    }

    /// Fraction of successful steals that crossed a pool boundary.
    pub fn remote_steal_fraction(&self) -> f64 {
        if self.steals == 0 {
            0.0
        } else {
            self.remote_steals as f64 / self.steals as f64
        }
    }

    /// Fraction of completed attempts that targeted another pool — the
    /// scan policy's property, robust even when victims are empty.
    pub fn remote_attempt_fraction(&self) -> f64 {
        if self.steal_attempts == 0 {
            0.0
        } else {
            self.remote_attempts as f64 / self.steal_attempts as f64
        }
    }

    /// True iff the batch accounting is consistent: every batched task
    /// is also a counted steal (the batch counters ride *outside* the
    /// attempts identity), and every batch grabbed at least two tasks.
    /// Under the single-steal default both counters are structurally
    /// zero and this holds trivially.
    pub fn batch_consistent(&self) -> bool {
        self.batched_tasks <= self.steals && self.batched_tasks >= 2 * self.batch_steals
    }

    /// True iff every park this snapshot saw also returned. Holds at any
    /// quiescent point (shutdown especially); a live mid-park snapshot
    /// may legitimately read `parks == unparks + 1` per sleeping worker.
    pub fn parks_balance(&self) -> bool {
        self.parks == self.unparks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums() {
        let ws = [WorkerStats::default(), WorkerStats::default()];
        ws[0].jobs.store(3, Ordering::Relaxed);
        ws[1].jobs.store(4, Ordering::Relaxed);
        ws[0].steals.store(1, Ordering::Relaxed);
        ws[1].steal_attempts.store(10, Ordering::Relaxed);
        ws[1].empties.store(9, Ordering::Relaxed);
        let s = PoolStats::aggregate(&ws);
        assert_eq!(s.jobs, 7);
        assert_eq!(s.steals, 1);
        assert_eq!(s.steal_attempts, 10);
        assert_eq!(s.empties, 9);
        assert!((s.steal_success_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_rate() {
        assert_eq!(PoolStats::default().steal_success_rate(), 0.0);
    }

    /// Adjacent workers' counters must never share a cache line — the
    /// `repr(align(128))` padding is load-bearing for the hot path.
    #[test]
    fn worker_stats_are_cache_line_padded() {
        assert_eq!(std::mem::align_of::<WorkerStats>() % 128, 0);
        let ws = [WorkerStats::default(), WorkerStats::default()];
        let a = &ws[0] as *const WorkerStats as usize;
        let b = &ws[1] as *const WorkerStats as usize;
        assert!(b.abs_diff(a) >= 128);
    }

    #[test]
    fn attempts_balance_identity() {
        let s = PoolStats {
            steal_attempts: 10,
            steals: 3,
            aborts: 2,
            empties: 5,
            ..PoolStats::default()
        };
        assert!(s.attempts_balance());
        assert!(!PoolStats {
            steal_attempts: 1,
            ..PoolStats::default()
        }
        .attempts_balance());
        // The identity covers the injector path: an attempt that landed
        // as an inject balances, and injects without attempts do not.
        assert!(PoolStats {
            steal_attempts: 11,
            steals: 3,
            aborts: 2,
            empties: 5,
            injects: 1,
            ..PoolStats::default()
        }
        .attempts_balance());
        assert!(!PoolStats {
            injects: 1,
            ..PoolStats::default()
        }
        .attempts_balance());
        // The five-way extension: a duplicate outcome consumes an
        // attempt like any other, and phantom duplicates unbalance.
        assert!(PoolStats {
            steal_attempts: 12,
            steals: 3,
            aborts: 2,
            empties: 5,
            injects: 1,
            duplicates: 1,
            ..PoolStats::default()
        }
        .attempts_balance());
        assert!(!PoolStats {
            duplicates: 1,
            ..PoolStats::default()
        }
        .attempts_balance());
    }

    #[test]
    fn locality_split_rides_outside_the_identity() {
        // remote_steals sub-counts steals without entering the attempts
        // identity: the same five-way balance holds with or without it.
        let s = PoolStats {
            steal_attempts: 10,
            steals: 4,
            remote_steals: 3,
            remote_attempts: 6,
            aborts: 1,
            empties: 5,
            ..PoolStats::default()
        };
        assert!(s.attempts_balance());
        assert!(s.locality_consistent());
        assert_eq!(s.local_steals(), 1);
        assert!((s.remote_steal_fraction() - 0.75).abs() < 1e-12);
        assert!((s.remote_attempt_fraction() - 0.6).abs() < 1e-12);
        assert!(!PoolStats {
            steals: 1,
            remote_steals: 2,
            remote_attempts: 2,
            steal_attempts: 2,
            ..PoolStats::default()
        }
        .locality_consistent());
        // A remote hit must also have been counted as a remote attempt.
        assert!(!PoolStats {
            steal_attempts: 5,
            steals: 2,
            remote_steals: 1,
            remote_attempts: 0,
            ..PoolStats::default()
        }
        .locality_consistent());
        assert_eq!(PoolStats::default().remote_steal_fraction(), 0.0);
        assert_eq!(PoolStats::default().remote_attempt_fraction(), 0.0);
        // Aggregation carries the split.
        let ws = [WorkerStats::default(), WorkerStats::default()];
        ws[0].steals.store(2, Ordering::Relaxed);
        ws[0].remote_steals.store(1, Ordering::Relaxed);
        ws[1].steals.store(3, Ordering::Relaxed);
        let agg = PoolStats::aggregate(&ws);
        assert_eq!(agg.remote_steals, 1);
        assert_eq!(agg.local_steals(), 4);
    }

    #[test]
    fn batch_counters_ride_outside_the_identity() {
        // A batch of 3 records 3 attempts + 3 steals (identity intact)
        // plus one batch_steals and 3 batched_tasks alongside.
        let s = PoolStats {
            steal_attempts: 10,
            steals: 5,
            empties: 5,
            batch_steals: 1,
            batched_tasks: 3,
            ..PoolStats::default()
        };
        assert!(s.attempts_balance());
        assert!(s.batch_consistent());
        // More batched tasks than steals: inconsistent.
        assert!(!PoolStats {
            steals: 2,
            batch_steals: 1,
            batched_tasks: 3,
            ..PoolStats::default()
        }
        .batch_consistent());
        // A "batch" of one task is not a batch.
        assert!(!PoolStats {
            steals: 5,
            batch_steals: 1,
            batched_tasks: 1,
            ..PoolStats::default()
        }
        .batch_consistent());
        // Structural zero under the single-steal default.
        assert!(PoolStats::default().batch_consistent());
        // Aggregation carries the batch counters.
        let ws = [WorkerStats::default(), WorkerStats::default()];
        ws[0].batch_steals.store(2, Ordering::Relaxed);
        ws[0].batched_tasks.store(5, Ordering::Relaxed);
        ws[1].batched_tasks.store(2, Ordering::Relaxed);
        ws[1].batch_steals.store(1, Ordering::Relaxed);
        let agg = PoolStats::aggregate(&ws);
        assert_eq!(agg.batch_steals, 3);
        assert_eq!(agg.batched_tasks, 7);
    }

    #[test]
    fn parks_balance_identity() {
        let s = PoolStats {
            parks: 7,
            unparks: 7,
            ..PoolStats::default()
        };
        assert!(s.parks_balance());
        assert!(!PoolStats {
            parks: 7,
            unparks: 6,
            ..PoolStats::default()
        }
        .parks_balance());
    }

    /// Regression for the extended identity on the live pool: external
    /// submissions flow through counted injector polls, so `injects`
    /// moves and `steal_attempts == steals + aborts + empties + injects`
    /// still holds per worker and in aggregate.
    #[test]
    fn live_pool_attempts_balance_with_injects() {
        let pool = crate::pool::ThreadPool::new(3);
        let done = std::sync::Arc::new(AtomicU64::new(0));
        for _ in 0..64 {
            let done = std::sync::Arc::clone(&done);
            pool.spawn(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        while done.load(Ordering::Relaxed) < 64 {
            std::thread::yield_now();
        }
        let report = pool.shutdown();
        assert!(
            report.stats.injects > 0,
            "external submissions must be taken via counted injector polls: {:?}",
            report.stats
        );
        assert!(
            report.stats.attempts_balance(),
            "attempts {} != steals {} + aborts {} + empties {} + injects {}",
            report.stats.steal_attempts,
            report.stats.steals,
            report.stats.aborts,
            report.stats.empties,
            report.stats.injects
        );
        for (i, w) in report.per_worker.iter().enumerate() {
            assert!(w.attempts_balance(), "worker {i} unbalanced: {w:?}");
        }
    }

    /// The live pool maintains the identity: every completed `popTop` is
    /// classified as exactly one of hit / abort / empty.
    #[test]
    fn live_pool_attempts_balance() {
        let pool = crate::pool::ThreadPool::new(4);
        let n = pool.install(|| {
            fn fib(n: u64) -> u64 {
                if n < 2 {
                    return n;
                }
                let (a, b) = crate::join(|| fib(n - 1), || fib(n - 2));
                a + b
            }
            fib(16)
        });
        assert_eq!(n, 987);
        let report = pool.shutdown();
        assert!(
            report.stats.attempts_balance(),
            "attempts {} != steals {} + aborts {} + empties {}",
            report.stats.steal_attempts,
            report.stats.steals,
            report.stats.aborts,
            report.stats.empties
        );
        for (i, w) in report.per_worker.iter().enumerate() {
            assert!(w.attempts_balance(), "worker {i} unbalanced: {w:?}");
        }
    }
}
