//! Per-worker and aggregate scheduler statistics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters maintained by one worker. Padded to a cache line so workers
/// never false-share their hot counters.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct WorkerStats {
    /// Jobs executed (assigned-node executions, in the paper's terms).
    pub jobs: AtomicU64,
    /// `popTop` invocations completed against victims.
    pub steal_attempts: AtomicU64,
    /// Steal attempts that returned a job.
    pub steals: AtomicU64,
    /// Steal attempts that lost a `cas` race.
    pub aborts: AtomicU64,
    /// yield system calls between steal scans.
    pub yields: AtomicU64,
    /// Times this worker parked for lack of work.
    pub parks: AtomicU64,
}

/// A point-in-time aggregate over all workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    pub jobs: u64,
    pub steal_attempts: u64,
    pub steals: u64,
    pub aborts: u64,
    pub yields: u64,
    pub parks: u64,
}

impl PoolStats {
    /// Sums the per-worker counters.
    pub fn aggregate(workers: &[WorkerStats]) -> Self {
        let mut s = PoolStats::default();
        for w in workers {
            s.jobs += w.jobs.load(Ordering::Relaxed);
            s.steal_attempts += w.steal_attempts.load(Ordering::Relaxed);
            s.steals += w.steals.load(Ordering::Relaxed);
            s.aborts += w.aborts.load(Ordering::Relaxed);
            s.yields += w.yields.load(Ordering::Relaxed);
            s.parks += w.parks.load(Ordering::Relaxed);
        }
        s
    }

    /// Fraction of completed steal attempts that succeeded.
    pub fn steal_success_rate(&self) -> f64 {
        if self.steal_attempts == 0 {
            0.0
        } else {
            self.steals as f64 / self.steal_attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_sums() {
        let ws = [WorkerStats::default(), WorkerStats::default()];
        ws[0].jobs.store(3, Ordering::Relaxed);
        ws[1].jobs.store(4, Ordering::Relaxed);
        ws[0].steals.store(1, Ordering::Relaxed);
        ws[1].steal_attempts.store(10, Ordering::Relaxed);
        let s = PoolStats::aggregate(&ws);
        assert_eq!(s.jobs, 7);
        assert_eq!(s.steals, 1);
        assert_eq!(s.steal_attempts, 10);
        assert!((s.steal_success_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_rate() {
        assert_eq!(PoolStats::default().steal_success_rate(), 0.0);
    }
}
