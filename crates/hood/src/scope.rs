//! Structured fire-and-forget spawning: `scope(|s| s.spawn(...))`.
//!
//! A scope guarantees every spawned job finishes before `scope` returns,
//! which is what makes borrowing local data from spawned closures sound.
//! Spawned jobs go onto the spawning worker's deque bottom exactly like a
//! join's second operand; idle workers steal them from the top.

use crate::job::HeapJob;
use crate::pool::current_worker;
use std::any::Any;
use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A spawn scope. See [`scope`].
pub struct Scope<'scope> {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    // Invariant over 'scope, like rayon: spawned closures may borrow
    // anything that outlives the scope call.
    marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` to run (potentially in parallel) before the enclosing
    /// [`scope`] returns. May be called from any thread inside the scope,
    /// including from other spawned jobs.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let this: &Scope<'scope> = self;
        let run = move || {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| body(this)));
            if let Err(p) = result {
                let mut slot = this.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
            this.pending.fetch_sub(1, Ordering::AcqRel);
        };
        match current_worker() {
            Some(w) => {
                // SAFETY: `scope` blocks until `pending` reaches zero, so
                // the job (which borrows `self` and `'scope` data) cannot
                // outlive its borrows; the deque delivers it exactly once.
                let job = unsafe { HeapJob::into_job_ref(run) };
                if !w.push(job) {
                    // Deque full: run inline.
                    unsafe { job.execute() };
                }
            }
            None => run(), // no pool: immediate execution
        }
    }

    fn done(&self) -> bool {
        self.pending.load(Ordering::Acquire) == 0
    }
}

/// Creates a scope, runs `f` inside it, waits for every spawned job, then
/// returns `f`'s result. If any job (or `f` itself) panicked, the first
/// panic is re-raised here after all jobs have completed.
///
/// ```
/// use hood::{scope, ThreadPool};
/// use std::sync::atomic::{AtomicU32, Ordering};
///
/// let pool = ThreadPool::new(2);
/// let hits = AtomicU32::new(0);
/// pool.install(|| {
///     scope(|s| {
///         for _ in 0..8 {
///             s.spawn(|_| { hits.fetch_add(1, Ordering::Relaxed); });
///         }
///     });
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 8);
/// ```
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let s = Scope {
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        marker: PhantomData,
    };
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    // Wait for all spawned jobs — by working, if we are a worker.
    match current_worker() {
        Some(w) => w.wait_until(|| s.done()),
        None => {
            while !s.done() {
                std::thread::yield_now();
            }
        }
    }
    if let Some(p) = s.panic.lock().unwrap().take() {
        std::panic::resume_unwind(p);
    }
    match result {
        Ok(r) => r,
        Err(p) => std::panic::resume_unwind(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_all_spawns() {
        let pool = ThreadPool::new(4);
        let counter = AtomicU64::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..100 {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_spawns() {
        let pool = ThreadPool::new(3);
        let counter = AtomicU64::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|s| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        for _ in 0..4 {
                            s.spawn(|_| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4 + 16);
    }

    #[test]
    fn scope_borrows_stack_data() {
        let pool = ThreadPool::new(4);
        let mut results = vec![0u64; 64];
        pool.install(|| {
            scope(|s| {
                for (i, slot) in results.iter_mut().enumerate() {
                    s.spawn(move |_| {
                        *slot = (i as u64) * 2;
                    });
                }
            });
        });
        for (i, &v) in results.iter().enumerate() {
            assert_eq!(v, i as u64 * 2);
        }
    }

    #[test]
    fn scope_outside_pool_runs_inline() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            s.spawn(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn spawn_panic_propagates_after_completion() {
        let pool = ThreadPool::new(2);
        let completed = AtomicU64::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                scope(|s| {
                    s.spawn(|_| panic!("spawned panic"));
                    for _ in 0..10 {
                        s.spawn(|_| {
                            completed.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            })
        }));
        assert!(r.is_err());
        // All non-panicking jobs still ran before the panic surfaced.
        assert_eq!(completed.load(Ordering::Relaxed), 10);
        // Pool survives.
        assert_eq!(pool.install(|| 2 + 2), 4);
    }
}
