//! **hood** — a user-level work-stealing runtime in the spirit of the
//! authors' Hood C++ threads library, built on the non-blocking ABP deque.
//!
//! Worker threads are the paper's *processes*: a fixed collection onto
//! which user-level work is scheduled, while the OS kernel (the paper's
//! adversary) schedules the threads onto processors. Each worker owns an
//! ABP deque of word-sized job pointers; idle workers yield and steal
//! from uniformly random victims, exactly the Figure-3 loop.
//!
//! # Quickstart
//!
//! ```
//! use hood::{ThreadPool, join};
//!
//! fn fib(n: u64) -> u64 {
//!     if n < 2 { return n; }
//!     let (a, b) = join(|| fib(n - 1), || fib(n - 2));
//!     a + b
//! }
//!
//! let pool = ThreadPool::new(4);
//! assert_eq!(pool.install(|| fib(16)), 987);
//! ```
//!
//! Configuration ([`PoolConfig`]) exposes the paper's ablation axes: the
//! deque backend (non-blocking ABP vs. a locking baseline) and whether
//! thieves yield between steal attempts.
//!
//! # External submission
//!
//! Non-worker threads submit work through the pool's sharded injector
//! ("front door") with [`ThreadPool::spawn`] / [`ThreadPool::spawn_batch`];
//! idle workers poll it between steal scans (cadence set by the
//! [`InjectKind`] policy axis):
//!
//! ```
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let pool = hood::ThreadPool::new(2);
//! let hits = Arc::new(AtomicU64::new(0));
//! for _ in 0..16 {
//!     let hits = Arc::clone(&hits);
//!     pool.spawn(move || { hits.fetch_add(1, Ordering::Relaxed); });
//! }
//! let report = pool.shutdown(); // drains the injector: exactly-once
//! assert_eq!(hits.load(Ordering::Relaxed), 16);
//! assert!(report.stats.attempts_balance());
//! ```
//!
//! # Data parallelism
//!
//! [`par`] is the rayon-style combinator layer — `par_iter()`, parallel
//! sort, a FIFO scope — scheduled by *adaptive splitting*: ranges fork
//! only while the sleep subsystem reports idle workers (one relaxed
//! load), and run sequentially at full speed once the pool saturates.
//! The [`SplitKind`] policy axis selects adaptive / eager-grain /
//! sequential cadence per pool.

mod injector;
pub mod job;
pub mod join;
pub mod latch;
pub mod par;
pub mod parallel;
pub mod pool;
pub mod scope;
pub mod sleep;
pub mod stats;

pub use abp_core::{
    BackoffKind, BatchKind, IdleKind, InjectKind, PolicySet, SplitKind, VictimKind,
};
pub use join::join;
pub use par::{par_sort_unstable, scope_fifo, ScopeFifo, Splitter};
pub use parallel::{for_each_mut, map_collect, map_reduce, sort_unstable};
pub use pool::{Backend, PoolConfig, PoolReport, ThreadPool, WorkerCtx};
pub use scope::{scope, Scope};
pub use sleep::{SleepKind, SleepStats};
pub use stats::{PoolStats, WorkerStats};

#[cfg(feature = "telemetry")]
pub use pool::{TelemetryConfig, TelemetrySnapshot};
