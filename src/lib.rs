//! **multiprog-ws** — a from-scratch reproduction of *Thread Scheduling
//! for Multiprogrammed Multiprocessors* (Arora, Blumofe, Plaxton;
//! SPAA 1998): the non-blocking work-stealing deque, the work-stealing
//! scheduler and its two-level (user/kernel) multiprogramming model, the
//! offline scheduling theory, and a real threaded runtime.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! * [`deque`] ([`abp_deque`]) — the ABP lock-free deque (Figure 5), a
//!   locking baseline, an instruction-stepped variant, and an
//!   interleaving model checker for the §3.2 relaxed semantics;
//! * [`dag`] ([`abp_dag`]) — computation dags (`T₁`, `T∞`, threads,
//!   enabling trees) and workload generators;
//! * [`kernel`] ([`abp_kernel`]) — kernel schedules, processor average,
//!   the benign/oblivious/adaptive adversaries, and yield semantics;
//! * [`sim`] ([`abp_sim`]) — the instruction-level simulator of the
//!   Figure-3 scheduling loop with live Lemma-3/potential checking, plus
//!   greedy and Brent offline schedulers;
//! * [`runtime`] ([`hood`]) — the real threaded fork-join runtime;
//! * [`telemetry`] ([`abp_telemetry`]) — the shared tracing/metrics
//!   subsystem: lock-free per-worker event rings, histograms, and
//!   Chrome-trace (Perfetto) / JSON exporters used by both the runtime
//!   and the simulator.

pub use abp_dag as dag;
pub use abp_deque as deque;
pub use abp_kernel as kernel;
pub use abp_sim as sim;
pub use abp_telemetry as telemetry;
pub use hood as runtime;
