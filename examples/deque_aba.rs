//! The §3.3 ABA scenario, step by step.
//!
//! ```sh
//! cargo run --release --example deque_aba
//! ```
//!
//! Replays the exact interleaving the paper uses to motivate the `tag`
//! field of the `age` word — a thief preempted between reading the top
//! entry and its `cas`, while the owner empties and refills the deque —
//! against both the correct (tagged) deque and the broken (untagged)
//! variant, then lets the exhaustive model checker quantify how many of
//! the scenario's interleavings go wrong without the tag.
//!
//! A final act shows the *other* answer to the same race: the fence-free
//! multiplicity deque doesn't carry a tag (or any `cas` on its steal
//! fast path) — it lets the race happen and resolves it at the per-slot
//! once-guard, reporting the loser as `Steal::Duplicate`. A thief storm
//! hammers one deque to surface real duplicates, and the same backend is
//! then selected for a whole pool via `PoolConfig::with_deque`, where
//! duplicates show up as a counted (never executed-twice) column in the
//! shutdown report.

use abp_deque::model::{explore, ProgOp, Scenario};
use abp_deque::{DequeOp, FenceFreeBackend, SimDeque, SimSteal, Steal, StepOutcome, TaskDeque};
use hood::{join, Backend, PoolConfig, ThreadPool};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

fn run_scenario(tagged: bool) {
    println!(
        "--- {} deque ---",
        if tagged {
            "tagged (correct)"
        } else {
            "UNTAGGED (broken)"
        }
    );
    let mut d = SimDeque::with_tagging(tagged);
    DequeOp::push_bottom(100).run_to_completion(&mut d);
    println!(
        "owner : pushBottom(100)            deque = {:?}",
        d.contents()
    );

    let mut thief = DequeOp::pop_top();
    thief.step(&mut d); // load age
    thief.step(&mut d); // load bot
    thief.step(&mut d); // load deq[top] = 100
    println!("thief : popTop reads age, bot, and deq[top]=100 … then is PREEMPTED");

    match DequeOp::pop_bottom().run_to_completion(&mut d) {
        StepOutcome::PopBottomDone(r) => {
            println!(
                "owner : popBottom() -> {r:?}           (resets bot and top{})",
                if tagged { ", bumps tag" } else { "" }
            )
        }
        o => panic!("{o:?}"),
    }
    DequeOp::push_bottom(200).run_to_completion(&mut d);
    println!(
        "owner : pushBottom(200)            deque = {:?}",
        d.contents()
    );

    print!("thief : resumes, cas(age, oldAge, oldAge.top+1) -> ");
    match thief.step(&mut d) {
        StepOutcome::PopTopDone(SimSteal::Abort) => {
            println!("FAILS (tag changed)");
            println!("        200 is safe in the deque: {:?}", d.contents());
        }
        StepOutcome::PopTopDone(SimSteal::Taken(v)) => {
            println!("SUCCEEDS, steals {v}");
            println!(
                "        but {v} was already popped by the owner, and 200 has vanished: {:?}",
                d.contents()
            );
        }
        o => panic!("{o:?}"),
    }
    println!();
}

/// A thief storm against one fence-free deque: N values in, 4 guarded
/// thieves racing the owner's drain. The once-guard turns every lost
/// race into a counted `Steal::Duplicate`; each value is still extracted
/// exactly once, and nothing can abort.
fn fence_free_storm() {
    const N: usize = 20_000;
    const THIEVES: usize = 4;
    let backend = FenceFreeBackend { capacity: N };
    let (owner, stealer) = backend.new_pair();
    for v in 0..N as u64 {
        owner.push_bottom(v).unwrap();
    }
    let counts: Arc<Vec<AtomicU8>> = Arc::new((0..N).map(|_| AtomicU8::new(0)).collect());
    let handles: Vec<_> = (0..THIEVES)
        .map(|_| {
            let s = stealer.clone();
            let counts = Arc::clone(&counts);
            std::thread::spawn(move || {
                let (mut takes, mut dups) = (0u64, 0u64);
                loop {
                    match s.steal() {
                        Steal::Taken(v) => {
                            takes += 1;
                            counts[v as usize].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Duplicate => dups += 1,
                        Steal::Empty => break,
                        Steal::Abort => unreachable!("fence-free popTop has no cas to lose"),
                    }
                }
                (takes, dups)
            })
        })
        .collect();
    // The owner fights for the bottom end at the same time.
    let mut owner_takes = 0u64;
    while let Some(v) = owner.pop_bottom() {
        owner_takes += 1;
        counts[v as usize].fetch_add(1, Ordering::Relaxed);
    }
    let (mut takes, mut dups) = (owner_takes, 0u64);
    for h in handles {
        let (t, d) = h.join().unwrap();
        takes += t;
        dups += d;
    }
    assert_eq!(takes as usize, N, "every value extracted");
    assert!(
        counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
        "…exactly once"
    );
    println!(
        "  {N} values, owner + {THIEVES} thieves: {takes} extractions (exactly once, \
         checked), {dups} lost claim races counted as Duplicate, 0 aborts"
    );
}

/// The same backend driving a whole pool: `with_deque` selects it, the
/// monomorphized workers run fork-join over it, and the shutdown report
/// pins the structural zeros (ABP: no duplicates; fence-free: no aborts).
fn pool_backend_selection() {
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    for backend in [
        Backend::Abp { capacity: 1 << 13 },
        Backend::FenceFree { capacity: 1 << 13 },
    ] {
        let pool =
            ThreadPool::with_config(PoolConfig::default().with_num_procs(4).with_deque(backend));
        assert_eq!(pool.install(|| fib(20)), 6_765);
        let report = pool.shutdown();
        let st = &report.stats;
        println!(
            "  {:<10}  fib(20) on 4 workers: attempts {} = steals {} + aborts {} + \
             empties {} + injects {} + duplicates {}",
            report.backend,
            st.steal_attempts,
            st.steals,
            st.aborts,
            st.empties,
            st.injects,
            st.duplicates,
        );
    }
}

fn main() {
    println!("The §3.3 ABA interleaving (deque holds one node, value 100):");
    println!();
    run_scenario(true);
    run_scenario(false);

    println!("Exhaustive check of every interleaving of this scenario");
    println!("(owner: push(1), popBottom, push(2); thief: popTop):");
    let sc = Scenario::new(vec![
        vec![ProgOp::Push(1), ProgOp::PopBottom, ProgOp::Push(2)],
        vec![ProgOp::PopTop],
    ]);
    for tagged in [true, false] {
        let rep = explore(&sc, tagged);
        println!(
            "  tag {}: {} interleavings, {} violate the relaxed semantics{}",
            if tagged { "on " } else { "off" },
            rep.histories,
            rep.violating,
            rep.example
                .as_ref()
                .map(|v| format!("  (e.g. {})", v.reason))
                .unwrap_or_default()
        );
    }

    println!();
    println!("The fence-free alternative: no tag, no cas on the steal path —");
    println!("the race is allowed and the per-slot once-guard counts the losers:");
    fence_free_storm();
    println!();
    println!("Backend selection through PoolConfig::with_deque (five-way identity");
    println!("at shutdown; exact backends pin duplicates = 0, fence-free pins aborts = 0):");
    pool_backend_selection();
}
