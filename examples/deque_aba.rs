//! The §3.3 ABA scenario, step by step.
//!
//! ```sh
//! cargo run --release --example deque_aba
//! ```
//!
//! Replays the exact interleaving the paper uses to motivate the `tag`
//! field of the `age` word — a thief preempted between reading the top
//! entry and its `cas`, while the owner empties and refills the deque —
//! against both the correct (tagged) deque and the broken (untagged)
//! variant, then lets the exhaustive model checker quantify how many of
//! the scenario's interleavings go wrong without the tag.

use abp_deque::model::{explore, ProgOp, Scenario};
use abp_deque::{DequeOp, SimDeque, SimSteal, StepOutcome};

fn run_scenario(tagged: bool) {
    println!(
        "--- {} deque ---",
        if tagged {
            "tagged (correct)"
        } else {
            "UNTAGGED (broken)"
        }
    );
    let mut d = SimDeque::with_tagging(tagged);
    DequeOp::push_bottom(100).run_to_completion(&mut d);
    println!(
        "owner : pushBottom(100)            deque = {:?}",
        d.contents()
    );

    let mut thief = DequeOp::pop_top();
    thief.step(&mut d); // load age
    thief.step(&mut d); // load bot
    thief.step(&mut d); // load deq[top] = 100
    println!("thief : popTop reads age, bot, and deq[top]=100 … then is PREEMPTED");

    match DequeOp::pop_bottom().run_to_completion(&mut d) {
        StepOutcome::PopBottomDone(r) => {
            println!(
                "owner : popBottom() -> {r:?}           (resets bot and top{})",
                if tagged { ", bumps tag" } else { "" }
            )
        }
        o => panic!("{o:?}"),
    }
    DequeOp::push_bottom(200).run_to_completion(&mut d);
    println!(
        "owner : pushBottom(200)            deque = {:?}",
        d.contents()
    );

    print!("thief : resumes, cas(age, oldAge, oldAge.top+1) -> ");
    match thief.step(&mut d) {
        StepOutcome::PopTopDone(SimSteal::Abort) => {
            println!("FAILS (tag changed)");
            println!("        200 is safe in the deque: {:?}", d.contents());
        }
        StepOutcome::PopTopDone(SimSteal::Taken(v)) => {
            println!("SUCCEEDS, steals {v}");
            println!(
                "        but {v} was already popped by the owner, and 200 has vanished: {:?}",
                d.contents()
            );
        }
        o => panic!("{o:?}"),
    }
    println!();
}

fn main() {
    println!("The §3.3 ABA interleaving (deque holds one node, value 100):");
    println!();
    run_scenario(true);
    run_scenario(false);

    println!("Exhaustive check of every interleaving of this scenario");
    println!("(owner: push(1), popBottom, push(2); thief: popTop):");
    let sc = Scenario::new(vec![
        vec![ProgOp::Push(1), ProgOp::PopBottom, ProgOp::Push(2)],
        vec![ProgOp::PopTop],
    ]);
    for tagged in [true, false] {
        let rep = explore(&sc, tagged);
        println!(
            "  tag {}: {} interleavings, {} violate the relaxed semantics{}",
            if tagged { "on " } else { "off" },
            rep.histories,
            rep.violating,
            rep.example
                .as_ref()
                .map(|v| format!("  (e.g. {})", v.reason))
                .unwrap_or_default()
        );
    }
}
