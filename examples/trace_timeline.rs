//! Visualize where the time goes: per-process activity timelines of the
//! simulated work stealer under three environments, plus the victim
//! distribution and activity breakdown.
//!
//! ```sh
//! cargo run --release --example trace_timeline
//! ```

use abp_dag::gen;
use abp_kernel::{
    AdaptiveWorkerStarver, BenignKernel, CountSource, DedicatedKernel, Kernel, YieldPolicy,
};
use abp_sim::{run_ws, WsConfig};

fn show(name: &str, dag: &abp_dag::Dag, p: usize, kernel: &mut dyn Kernel, yp: YieldPolicy) {
    let cfg = WsConfig {
        yield_policy: yp,
        trace: true,
        ..WsConfig::default()
    };
    let r = run_ws(dag, p, kernel, cfg);
    assert!(r.completed);
    let trace = r.trace.as_ref().unwrap();
    println!("--- {name} ---");
    print!("{}", trace.render_timeline(72));
    let b = trace.activity_breakdown();
    println!(
        "breakdown: {b}  ({:.0}% of scheduled rounds productive)",
        100.0 * b.working_fraction()
    );
    let hist = trace.victim_histogram(p);
    println!(
        "victims  : {hist:?}  (chi-square vs uniform: {:.1})",
        trace.victim_chi_square(p)
    );
    println!(
        "summary  : {} rounds, P_A {:.2}, {} steal attempts, {} throws, max deque depth {}",
        r.rounds,
        r.pa,
        r.steal_attempts,
        r.throws,
        trace.max_deque_depth()
    );
    println!();
}

fn main() {
    let dag = gen::fib(17, 4);
    let p = 8;
    println!(
        "workload fib(17,4): T1 = {}, Tinf = {}, parallelism {:.1}; P = {p}\n",
        dag.work(),
        dag.critical_path(),
        dag.parallelism()
    );

    let mut k = DedicatedKernel::new(p);
    show("dedicated machine", &dag, p, &mut k, YieldPolicy::None);

    let mut k = BenignKernel::new(
        p,
        CountSource::OnOff {
            on_rounds: 15,
            off_rounds: 15,
            on_count: 8,
            off_count: 2,
        },
        7,
    );
    show("benign bursty kernel", &dag, p, &mut k, YieldPolicy::None);

    let mut k = AdaptiveWorkerStarver::new(p, CountSource::Constant(4), 7);
    show(
        "adaptive worker-starver + yieldToAll",
        &dag,
        p,
        &mut k,
        YieldPolicy::ToAll,
    );
}
