//! Reconstructs the paper's Figures 1 and 2 as ASCII art.
//!
//! ```sh
//! cargo run --release --example paper_figures
//! ```
//!
//! Figure 1 is the 11-node, two-thread example computation dag (spawn
//! edge, semaphore edge, join edge); Figure 2 is a 3-process kernel
//! schedule with processor average 2 plus a greedy execution schedule of
//! the Figure-1 dag under it, which completes in exactly 10 steps.

use abp_dag::examples::figure1;
use abp_dag::EdgeKind;
use abp_sim::figure2_execution;

fn main() {
    let (dag, names) = figure1();
    println!("Figure 1: example computation dag");
    println!("=================================");
    println!();
    println!("  root thread : v1 -> v2 -> v3 -> v4 -> v10 -> v11");
    println!("  child thread: v5 -> v6 -> v7 -> v8 -> v9");
    println!();
    for e in dag.edges() {
        let label = match e.kind {
            EdgeKind::Continue => continue,
            EdgeKind::Spawn => "spawn",
            EdgeKind::Enable => "sync/join",
        };
        println!("  {} -> {}   [{}]", e.from, e.to, label);
    }
    println!();
    println!(
        "  work T1 = {}, critical path Tinf = {} (v1 v2 v5 v6 v7 v8 v9 v10 v11),",
        dag.work(),
        dag.critical_path()
    );
    println!("  parallelism T1/Tinf = {:.3}", dag.parallelism());
    println!();
    println!(
        "  If a process executes {} and then reaches {} before {} has executed,",
        names.root_nodes[2], names.root_nodes[3], names.child_nodes[1]
    );
    println!("  the root thread blocks — the P of a semaphore whose V is in the child.");
    println!();

    let (sched, dag, table) = figure2_execution();
    println!("Figure 2(a): kernel schedule (3 processes)");
    println!("==========================================");
    print!("{}", table.render(10));
    println!(
        "processor average over 10 steps: P_A = {:.2}",
        table.processor_average(10)
    );
    println!();
    println!("Figure 2(b): a greedy execution schedule of the Figure-1 dag");
    println!("=============================================================");
    print!("{}", sched.render(3));
    println!(
        "length {} steps, {} nodes executed, {} idle process-slots",
        sched.length(),
        dag.work(),
        sched.idle_tokens()
    );
    sched
        .validate(&dag, &table)
        .expect("the rendered schedule is valid");
    println!();
    println!(
        "Theorem 2 check: T = {} <= (T1 + Tinf*(P-1))/P_A = ({} + {}*2)/{:.0} = {:.1}",
        sched.length(),
        dag.work(),
        dag.critical_path(),
        sched.processor_average(),
        (dag.work() as f64 + dag.critical_path() as f64 * 2.0) / sched.processor_average()
    );
}
