//! The headline experiment, interactively: run the non-blocking work
//! stealer under the paper's three adversary classes and watch the
//! `T ≈ T1/P_A + T∞·P/P_A` bound hold as the kernel gets nastier.
//!
//! ```sh
//! cargo run --release --example multiprogrammed_sim [seed]
//! ```

use abp_dag::gen;
use abp_kernel::{
    AdaptiveWorkerStarver, BenignKernel, CountSource, DedicatedKernel, Kernel, ObliviousKernel,
    YieldPolicy,
};
use abp_sim::{run_ws, WsConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let dag = gen::fib(18, 4);
    let p = 8;
    println!(
        "workload: fib(18,4) — T1 = {}, Tinf = {}, parallelism = {:.1}; P = {p}, seed {seed}",
        dag.work(),
        dag.critical_path(),
        dag.parallelism()
    );
    println!();
    println!(
        "{:<26} {:>8} {:>7} {:>8} {:>8} {:>7}",
        "environment", "rounds", "P_A", "throws", "bound", "ratio"
    );

    let cases: Vec<(&str, Box<dyn Kernel>, YieldPolicy)> = vec![
        (
            "dedicated",
            Box::new(DedicatedKernel::new(p)),
            YieldPolicy::None,
        ),
        (
            "benign uniform(1..8)",
            Box::new(BenignKernel::new(
                p,
                CountSource::UniformBetween(1, 8),
                seed,
            )),
            YieldPolicy::None,
        ),
        (
            "benign bursty",
            Box::new(BenignKernel::new(
                p,
                CountSource::OnOff {
                    on_rounds: 40,
                    off_rounds: 40,
                    on_count: 8,
                    off_count: 1,
                },
                seed,
            )),
            YieldPolicy::None,
        ),
        (
            "oblivious rotating(3)",
            Box::new(ObliviousKernel::rotating(p, 3, 20, 2_000_000)),
            YieldPolicy::ToRandom,
        ),
        (
            "adaptive starve-workers",
            Box::new(AdaptiveWorkerStarver::new(
                p,
                CountSource::Constant(4),
                seed,
            )),
            YieldPolicy::ToAll,
        ),
    ];
    for (name, mut kernel, yp) in cases {
        let cfg = WsConfig {
            yield_policy: yp,
            seed,
            ..WsConfig::default()
        };
        let r = run_ws(&dag, p, kernel.as_mut(), cfg);
        assert!(r.completed, "{name} did not complete");
        println!(
            "{:<26} {:>8} {:>7.2} {:>8} {:>8.0} {:>7.3}",
            name,
            r.rounds,
            r.pa,
            r.throws,
            r.bound_denominator(),
            r.bound_ratio()
        );
    }
    println!();
    println!("ratio = rounds / (T1/P_A + Tinf*P/P_A); a flat ratio across rows is the");
    println!("paper's Theorem 9-12 result: the same constant covers every adversary.");
}
