//! Domain example: adaptive parallel quicksort.
//!
//! ```sh
//! cargo run --release --example par_quicksort
//! ```
//!
//! Sorts the same random data three ways — `std`'s sequential
//! `sort_unstable`, hood's adaptive [`hood::par_sort_unstable`], and the
//! same quicksort pinned to an eager fixed grain via the
//! [`hood::SplitKind`] policy axis — and prints timings plus the
//! splitter's task accounting. The interesting number is the
//! `par splits` column: the adaptive run forks only while idle workers
//! exist, so it spawns far fewer tasks than eager grain recursion while
//! reaching the same (or better) throughput.

use abp_dag::DetRng;
use hood::{par_sort_unstable, PolicySet, PoolConfig, SplitKind, ThreadPool};
use std::time::Instant;

fn random_data(len: usize, seed: u64) -> Vec<u64> {
    let mut rng = DetRng::new(seed);
    (0..len).map(|_| rng.below(u64::MAX / 2)).collect()
}

fn run(split: SplitKind, label: &str, data: &[u64], expect: &[u64]) {
    let p = std::thread::available_parallelism().map_or(4, |p| p.get());
    let pool = ThreadPool::with_config(PoolConfig {
        num_procs: p,
        policies: PolicySet {
            split,
            ..PolicySet::default()
        },
        ..PoolConfig::default()
    });
    let mut v = data.to_vec();
    let t = Instant::now();
    pool.install(|| par_sort_unstable(&mut v));
    let dt = t.elapsed();
    assert_eq!(v, expect, "{label}: wrong sort order");
    let report = pool.shutdown();
    println!(
        "{label:<22} {dt:>12?}   par splits {:>8}   seq fallbacks {:>8}",
        report.stats.par_splits, report.stats.par_seq
    );
}

fn main() {
    let len = 2_000_000;
    let data = random_data(len, 7);
    let mut expect = data.clone();
    let t = Instant::now();
    expect.sort_unstable();
    println!("{:<22} {:>12?}", "std sort_unstable", t.elapsed());

    run(SplitKind::Adaptive, "adaptive par sort", &data, &expect);
    run(
        SplitKind::EagerGrain { grain: 4_096 },
        "eager par sort (4096)",
        &data,
        &expect,
    );
}
