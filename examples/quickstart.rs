//! Quickstart: fork-join parallelism on the hood runtime.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a pool of worker processes, runs a recursive Fibonacci and a
//! divide-and-conquer sum through `join`, and prints the scheduler
//! statistics (steals, aborts, yields) that the paper's analysis is
//! about.

use hood::{join, ThreadPool};
use std::time::Instant;

fn fib(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    // Sequential cutoff keeps task granularity sane, like any real
    // work-stealing program.
    if n < 12 {
        return fib_serial(n);
    }
    let (a, b) = join(|| fib(n - 1), || fib(n - 2));
    a + b
}

fn fib_serial(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_serial(n - 1) + fib_serial(n - 2)
    }
}

fn sum(slice: &[u64]) -> u64 {
    if slice.len() <= 4096 {
        return slice.iter().sum();
    }
    let mid = slice.len() / 2;
    let (a, b) = join(|| sum(&slice[..mid]), || sum(&slice[mid..]));
    a + b
}

fn main() {
    // At least 4 processes even on small machines: on an oversubscribed
    // machine (P > processors) the yields keep the pool efficient, and the
    // steal statistics stay interesting.
    let procs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(4);
    let pool = ThreadPool::new(procs);
    println!("hood pool with P = {} processes", pool.num_procs());

    let t = Instant::now();
    let f = pool.install(|| fib(32));
    println!("fib(32) = {f}  ({:?})", t.elapsed());
    assert_eq!(f, 2_178_309);

    let data: Vec<u64> = (0..4_000_000).collect();
    let t = Instant::now();
    let s = pool.install(|| sum(&data));
    println!("sum(0..4e6) = {s}  ({:?})", t.elapsed());
    assert_eq!(s, 3_999_999u64 * 4_000_000 / 2);

    let stats = pool.stats();
    println!(
        "scheduler stats: {} jobs, {} steals / {} attempts ({:.1}% success), {} aborts, {} yields",
        stats.jobs,
        stats.steals,
        stats.steal_attempts,
        100.0 * stats.steal_success_rate(),
        stats.aborts,
        stats.yields
    );
}
