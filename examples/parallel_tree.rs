//! Domain example: parallel tree analytics with `scope` + `join`.
//!
//! ```sh
//! cargo run --release --example parallel_tree
//! cargo run --release --example parallel_tree -- --trace target/tree.json
//! ```
//!
//! Builds a large random binary search tree, then runs three analytics
//! over it on the hood runtime: a parallel reduction (sum), a parallel
//! max-depth computation (join over children — the irregular, unbalanced
//! recursion work stealing exists for), and a parallel filtered count via
//! scoped spawns into per-worker accumulators.
//!
//! With `--trace <path>` the run records structured telemetry and writes
//! a Chrome trace-event JSON file — open it in <https://ui.perfetto.dev>
//! to see one track per worker with job spans, steals, and parks.

use abp_dag::DetRng;
use hood::{join, scope, PoolConfig, TelemetryConfig, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};

struct Node {
    key: u64,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

fn insert(root: &mut Option<Box<Node>>, key: u64) {
    match root {
        None => {
            *root = Some(Box::new(Node {
                key,
                left: None,
                right: None,
            }))
        }
        Some(n) => {
            if key < n.key {
                insert(&mut n.left, key)
            } else {
                insert(&mut n.right, key)
            }
        }
    }
}

fn par_sum(node: &Option<Box<Node>>) -> u64 {
    match node {
        None => 0,
        Some(n) => {
            let (l, r) = join(|| par_sum(&n.left), || par_sum(&n.right));
            l + r + n.key
        }
    }
}

fn par_depth(node: &Option<Box<Node>>) -> u64 {
    match node {
        None => 0,
        Some(n) => {
            let (l, r) = join(|| par_depth(&n.left), || par_depth(&n.right));
            1 + l.max(r)
        }
    }
}

fn count_multiples(node: &Option<Box<Node>>, k: u64, acc: &AtomicU64) {
    if let Some(n) = node {
        if n.key % k == 0 {
            acc.fetch_add(1, Ordering::Relaxed);
        }
        scope(|s| {
            s.spawn(|_| count_multiples(&n.left, k, acc));
            count_multiples(&n.right, k, acc);
        });
    }
}

/// Parses `--trace <path>` from the command line.
fn trace_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            match args.next() {
                Some(p) => return Some(p),
                None => {
                    eprintln!("--trace requires a path argument");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

fn main() {
    const N: u64 = 200_000;
    let trace = trace_path();
    let mut rng = DetRng::new(2024);
    let mut keys: Vec<u64> = (0..N).collect();
    rng.shuffle(&mut keys);
    let mut root = None;
    for k in keys {
        insert(&mut root, k);
    }

    let pool = ThreadPool::with_config(PoolConfig {
        num_procs: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(4),
        telemetry: trace.as_ref().map(|_| TelemetryConfig {
            ring_capacity: 1 << 16,
        }),
        ..PoolConfig::default()
    });
    println!(
        "random BST with {N} keys on P = {} processes",
        pool.num_procs()
    );

    let sum = pool.install(|| par_sum(&root));
    assert_eq!(sum, N * (N - 1) / 2);
    println!("parallel sum       : {sum}");

    let depth = pool.install(|| par_depth(&root));
    println!(
        "parallel max depth : {depth} (ln-balanced would be ~{:.0})",
        (N as f64).log2() * 1.39
    );

    let acc = AtomicU64::new(0);
    pool.install(|| count_multiples(&root, 7, &acc));
    let sevens = acc.load(Ordering::Relaxed);
    assert_eq!(sevens, N.div_ceil(7));
    println!("multiples of 7     : {sevens}");

    let st = pool.stats();
    println!(
        "stats: {} jobs, {} steals, {:.1}% steal success",
        st.jobs,
        st.steals,
        100.0 * st.steal_success_rate()
    );

    if let Some(path) = trace {
        let report = pool.shutdown();
        let snap = report.telemetry.expect("telemetry was configured");
        let json = abp_telemetry::chrome_trace(&snap);
        std::fs::write(&path, &json).expect("write trace file");
        println!(
            "wrote {path}: {} events across {} workers ({} dropped) — open in ui.perfetto.dev",
            snap.workers.iter().map(|w| w.events.len()).sum::<usize>(),
            snap.workers.len(),
            snap.total_dropped()
        );
    }
}
