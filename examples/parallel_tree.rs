//! Domain example: parallel tree analytics with `scope` + `join`.
//!
//! ```sh
//! cargo run --release --example parallel_tree
//! ```
//!
//! Builds a large random binary search tree, then runs three analytics
//! over it on the hood runtime: a parallel reduction (sum), a parallel
//! max-depth computation (join over children — the irregular, unbalanced
//! recursion work stealing exists for), and a parallel filtered count via
//! scoped spawns into per-worker accumulators.

use abp_dag::DetRng;
use hood::{join, scope, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};

struct Node {
    key: u64,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

fn insert(root: &mut Option<Box<Node>>, key: u64) {
    match root {
        None => {
            *root = Some(Box::new(Node {
                key,
                left: None,
                right: None,
            }))
        }
        Some(n) => {
            if key < n.key {
                insert(&mut n.left, key)
            } else {
                insert(&mut n.right, key)
            }
        }
    }
}

fn par_sum(node: &Option<Box<Node>>) -> u64 {
    match node {
        None => 0,
        Some(n) => {
            let (l, r) = join(|| par_sum(&n.left), || par_sum(&n.right));
            l + r + n.key
        }
    }
}

fn par_depth(node: &Option<Box<Node>>) -> u64 {
    match node {
        None => 0,
        Some(n) => {
            let (l, r) = join(|| par_depth(&n.left), || par_depth(&n.right));
            1 + l.max(r)
        }
    }
}

fn count_multiples(node: &Option<Box<Node>>, k: u64, acc: &AtomicU64) {
    if let Some(n) = node {
        if n.key % k == 0 {
            acc.fetch_add(1, Ordering::Relaxed);
        }
        scope(|s| {
            s.spawn(|_| count_multiples(&n.left, k, acc));
            count_multiples(&n.right, k, acc);
        });
    }
}

fn main() {
    const N: u64 = 200_000;
    let mut rng = DetRng::new(2024);
    let mut keys: Vec<u64> = (0..N).collect();
    rng.shuffle(&mut keys);
    let mut root = None;
    for k in keys {
        insert(&mut root, k);
    }

    let pool = ThreadPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(4),
    );
    println!("random BST with {N} keys on P = {} processes", pool.num_procs());

    let sum = pool.install(|| par_sum(&root));
    assert_eq!(sum, N * (N - 1) / 2);
    println!("parallel sum       : {sum}");

    let depth = pool.install(|| par_depth(&root));
    println!("parallel max depth : {depth} (ln-balanced would be ~{:.0})", (N as f64).log2() * 1.39);

    let acc = AtomicU64::new(0);
    pool.install(|| count_multiples(&root, 7, &acc));
    let sevens = acc.load(Ordering::Relaxed);
    assert_eq!(sevens, N.div_ceil(7));
    println!("multiples of 7     : {sevens}");

    let st = pool.stats();
    println!(
        "stats: {} jobs, {} steals, {:.1}% steal success",
        st.jobs,
        st.steals,
        100.0 * st.steal_success_rate()
    );
}
