//! Domain example: parallel breadth-first search with `hood::par`.
//!
//! ```sh
//! cargo run --release --example par_bfs
//! ```
//!
//! Level-synchronous BFS over a deterministic random graph: each round
//! expands the whole frontier in parallel with `par_iter().for_each(..)`,
//! claiming vertices through per-vertex atomic flags (the classic
//! data-race-free frontier handoff), then collects the next frontier.
//! BFS frontiers are exactly the workload adaptive splitting is for —
//! they start tiny (1 vertex), balloon to hundreds of thousands, then
//! shrink again — so any fixed grain is wrong for most of the run, while
//! the splitter tracks the pool's idle gauge round by round.

use abp_dag::DetRng;
use hood::par::prelude::*;
use hood::ThreadPool;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Deterministic sparse digraph in CSR form.
struct Graph {
    offsets: Vec<usize>,
    edges: Vec<u32>,
}

impl Graph {
    fn random(n: usize, avg_degree: usize, seed: u64) -> Graph {
        let mut rng = DetRng::new(seed);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(n * avg_degree);
        offsets.push(0);
        for v in 0..n {
            let deg = rng.below(2 * avg_degree as u64) as usize;
            for _ in 0..deg {
                // Mix local and long-range edges so BFS levels are broad.
                let dst = if rng.chance(0.5) {
                    ((v as u64 + 1 + rng.below(64)) % n as u64) as u32
                } else {
                    rng.below(n as u64) as u32
                };
                edges.push(dst);
            }
            offsets.push(edges.len());
        }
        Graph { offsets, edges }
    }

    fn neighbors(&self, v: u32) -> &[u32] {
        &self.edges[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }
}

/// One parallel level-synchronous BFS; returns (reached, depth).
fn par_bfs(g: &Graph, source: u32) -> (usize, usize) {
    let n = g.offsets.len() - 1;
    let visited: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    visited[source as usize].store(true, Ordering::Relaxed);
    let mut frontier = vec![source];
    let mut depth = 0;
    let reached = AtomicUsize::new(1);
    while !frontier.is_empty() {
        // Expand the whole frontier in parallel. Each worker appends its
        // discoveries to a shard of the next frontier; vertices are
        // claimed by an atomic swap so exactly one parent wins.
        let next = Mutex::new(Vec::new());
        frontier.par_iter().for_each(|&v| {
            let mut local = Vec::new();
            for &w in g.neighbors(v) {
                if !visited[w as usize].swap(true, Ordering::Relaxed) {
                    local.push(w);
                }
            }
            if !local.is_empty() {
                reached.fetch_add(local.len(), Ordering::Relaxed);
                next.lock().unwrap().append(&mut local);
            }
        });
        frontier = next.into_inner().unwrap();
        if !frontier.is_empty() {
            depth += 1;
        }
    }
    (reached.load(Ordering::Relaxed), depth)
}

/// Sequential reference BFS.
fn seq_bfs(g: &Graph, source: u32) -> (usize, usize) {
    let n = g.offsets.len() - 1;
    let mut visited = vec![false; n];
    visited[source as usize] = true;
    let mut frontier = vec![source];
    let (mut reached, mut depth) = (1usize, 0usize);
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for &w in g.neighbors(v) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    reached += 1;
                    next.push(w);
                }
            }
        }
        frontier = next;
        if !frontier.is_empty() {
            depth += 1;
        }
    }
    (reached, depth)
}

fn main() {
    let n = 300_000;
    let g = Graph::random(n, 8, 42);
    println!("graph: {} vertices, {} edges", n, g.edges.len());

    let (seq_reached, seq_depth) = seq_bfs(&g, 0);
    println!("sequential: reached {seq_reached} vertices, depth {seq_depth}");

    let pool = ThreadPool::new(std::thread::available_parallelism().map_or(4, |p| p.get()));
    let t = std::time::Instant::now();
    let (reached, depth) = pool.install(|| par_bfs(&g, 0));
    let dt = t.elapsed();
    println!("parallel:   reached {reached} vertices, depth {depth} in {dt:?}");
    assert_eq!(reached, seq_reached, "parallel BFS must reach the same set");
    assert_eq!(depth, seq_depth);

    let report = pool.shutdown();
    println!(
        "pool: {} jobs, {} steals, {} par splits, {} sequential fallbacks",
        report.stats.jobs, report.stats.steals, report.stats.par_splits, report.stats.par_seq
    );
}
